//! Top-k accumulation with the rank of Def. 5(3) and the dynamic
//! `minNhp` upgrade of GRMiner(k) (§V, line 28 of Algorithm 1), plus the
//! cross-worker [`SharedBound`] the work-stealing parallel engine uses to
//! restore that upgrade in collect mode.

use crate::gr::ScoredGr;
use parking_lot::Mutex;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Heap entry ordered so the binary max-heap keeps the *worst-ranked* GR on
/// top, making eviction O(log k).
#[derive(Debug, Clone)]
struct Entry(ScoredGr);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // rank_cmp yields Less when self ranks better; the max-heap must
        // surface the worst entry, so "greater" = "worse" works directly.
        self.0.rank_cmp(&other.0)
    }
}

/// Bounded accumulator of the k best GRs.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl TopK {
    /// Accumulator for the best `k` GRs (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        TopK {
            k,
            // Cap the eager reservation: "effectively unbounded" k values
            // (baseline/ablation configurations) must not pre-allocate.
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
        }
    }

    /// Number of GRs currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no GR has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offer a candidate; returns `true` if it entered the top-k (possibly
    /// evicting the previous k-th).
    pub fn offer(&mut self, gr: ScoredGr) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(Entry(gr));
            return true;
        }
        let worst = self.heap.peek().expect("heap non-empty when full");
        if gr.rank_cmp(&worst.0) == Ordering::Less {
            self.heap.pop();
            self.heap.push(Entry(gr));
            true
        } else {
            false
        }
    }

    /// The dynamic pruning bound: the k-th best score once k GRs are held
    /// (Algorithm 1 line 28 "upgrades minNhp by the non-homophily
    /// preference of the least ranked GR in top\[k\]").
    ///
    /// Pruning against this bound must be *strict* (`score < bound`): an
    /// RHS extension of a candidate tied with the k-th on score could
    /// still win the supp/alphabetical tie-break.
    pub fn dynamic_bound(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.0.score)
        } else {
            None
        }
    }

    /// Consume, returning the GRs best-first.
    pub fn into_sorted(self) -> Vec<ScoredGr> {
        let mut v: Vec<ScoredGr> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_by(|a, b| a.rank_cmp(b));
        v
    }
}

/// Sentinel for "no bound published yet": `f64::from_bits(u64::MAX)` is a
/// NaN, which no metric score ever equals, so real bounds are never
/// confused with it.
const BOUND_UNSET: u64 = u64::MAX;

/// The dynamic top-k bound shared by the parallel miner's workers: a
/// monotonically tightening lower bound on the k-th best score of the
/// *final merged* result, published through an `AtomicU64` so the
/// hot-path read ([`SharedBound::get`]) is one uncontended atomic load.
///
/// Soundness is the whole design: the bound is fed only candidates that
/// are **guaranteed to survive the sequential post-pass** — when the
/// generality filter is off, that is every collected candidate; when it
/// is on, it is the candidates whose every strictly-more-general form is
/// excluded from collection by construction (empty edge descriptor and
/// the minimal reportable LHS width, see `Run::feeds_shared_bound`).
/// The k-th best score over any subset of the final survivor stream is a
/// lower bound on the k-th best score over all of it, and the heap only
/// grows, so every value ever published stays valid forever — stale reads
/// are merely conservative, which is why relaxed atomics suffice.
#[derive(Debug)]
pub struct SharedBound {
    /// Bits of the current bound, `BOUND_UNSET` until the heap first
    /// fills to k. Written only while `heap`'s lock is held.
    bits: AtomicU64,
    /// Top-k over the sure-survivor candidates offered so far.
    heap: Mutex<TopK>,
}

impl SharedBound {
    /// An unset bound for a run returning `k` GRs.
    pub fn new(k: usize) -> Self {
        SharedBound {
            bits: AtomicU64::new(BOUND_UNSET),
            heap: Mutex::new(TopK::new(k)),
        }
    }

    /// The current published bound, if the heap has filled. Any returned
    /// value is ≤ the final k-th best score (see type docs), so pruning
    /// strictly below it never cuts a final top-k member.
    pub fn get(&self) -> Option<f64> {
        // ordering: Acquire pairs with the Release publish in `offer`.
        // The loaded bits are the entire payload, so even a fully
        // Relaxed load is sound — stale values are older (smaller)
        // bounds and pruning against them is merely conservative; the
        // analyze crate's model checker proves exactly that under
        // coherence-only load semantics (`grm_analyze::model::bound`).
        // Acquire is kept because it is free on x86/aarch64 loads and
        // documents the publish edge for future fields.
        let bits = self.bits.load(AtomicOrdering::Acquire);
        (bits != BOUND_UNSET).then(|| f64::from_bits(bits))
    }

    /// Offer a candidate known to survive the final merge. Returns `true`
    /// when the published bound tightened (including its first
    /// publication). Cheap pre-check: a score at or below the current
    /// bound can neither enter the heap's top-k scores nor raise the
    /// k-th, so it skips the lock entirely.
    pub fn offer(&self, cand: &ScoredGr) -> bool {
        if let Some(b) = self.get() {
            if cand.score <= b {
                return false;
            }
        }
        let mut heap = self.heap.lock();
        heap.offer(cand.clone());
        let Some(new_bound) = heap.dynamic_bound() else {
            return false;
        };
        // ordering: Relaxed is exact here, not an optimization gamble —
        // every store to `bits` happens while `heap`'s lock is held (we
        // hold it now), so the previous store happens-before this load
        // via the mutex release/acquire pair and coherence forbids
        // reading anything older than the latest value.
        let prev = self.bits.load(AtomicOrdering::Relaxed);
        if prev == BOUND_UNSET || new_bound > f64::from_bits(prev) {
            // ordering: Release publish, paired with the Acquire load in
            // `get`. The cross-thread store path of the shared bound:
            // monotone non-decreasing values written only under the heap
            // lock, read lock-free by pruning workers.
            self.bits
                .store(new_bound.to_bits(), AtomicOrdering::Release);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
    use crate::gr::Gr;
    use grm_graph::NodeAttrId;

    fn gr(val: u16) -> Gr {
        Gr::new(
            NodeDescriptor::from_pairs([(NodeAttrId(0), val)]),
            EdgeDescriptor::empty(),
            NodeDescriptor::from_pairs([(NodeAttrId(1), 1)]),
        )
    }

    fn scored(val: u16, supp: u64, score: f64) -> ScoredGr {
        ScoredGr {
            gr: gr(val),
            supp,
            supp_lw: supp * 2,
            heff: 0,
            score,
        }
    }

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(2);
        assert!(t.offer(scored(1, 10, 0.5)));
        assert!(t.offer(scored(2, 10, 0.9)));
        assert!(t.offer(scored(3, 10, 0.7)), "evicts the 0.5");
        assert!(!t.offer(scored(4, 10, 0.4)), "worse than both");
        let v = t.into_sorted();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].score, 0.9);
        assert_eq!(v[1].score, 0.7);
    }

    #[test]
    fn dynamic_bound_appears_when_full() {
        let mut t = TopK::new(3);
        assert_eq!(t.dynamic_bound(), None);
        t.offer(scored(1, 5, 0.9));
        t.offer(scored(2, 5, 0.8));
        assert_eq!(t.dynamic_bound(), None, "not full yet");
        t.offer(scored(3, 5, 0.7));
        assert_eq!(t.dynamic_bound(), Some(0.7));
        t.offer(scored(4, 5, 0.95));
        assert_eq!(t.dynamic_bound(), Some(0.8), "bound tightens");
    }

    #[test]
    fn ties_break_by_supp_then_gr() {
        let mut t = TopK::new(2);
        t.offer(scored(3, 10, 0.5));
        t.offer(scored(1, 10, 0.5));
        // Same score and supp as the k-th, smaller canonical GR: wins.
        assert!(t.offer(scored(2, 10, 0.5)));
        let v = t.into_sorted();
        assert_eq!(
            v.iter().map(|s| s.gr.l.pairs()[0].1).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // Higher supp beats same score regardless of GR order.
        let mut t = TopK::new(1);
        t.offer(scored(1, 10, 0.5));
        assert!(t.offer(scored(9, 20, 0.5)));
        assert_eq!(t.into_sorted()[0].supp, 20);
    }

    #[test]
    fn k_of_one() {
        let mut t = TopK::new(1);
        t.offer(scored(1, 1, 0.2));
        assert_eq!(t.dynamic_bound(), Some(0.2));
        t.offer(scored(2, 1, 0.6));
        assert_eq!(t.dynamic_bound(), Some(0.6));
        assert_eq!(t.into_sorted().len(), 1);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        TopK::new(0);
    }

    #[test]
    fn shared_bound_publishes_only_when_full_and_tightens_monotonically() {
        let b = SharedBound::new(2);
        assert_eq!(b.get(), None);
        assert!(!b.offer(&scored(1, 5, 0.5)), "not full yet");
        assert_eq!(b.get(), None);
        assert!(b.offer(&scored(2, 5, 0.9)), "fills the heap: first bound");
        assert_eq!(b.get(), Some(0.5));
        assert!(!b.offer(&scored(3, 5, 0.4)), "below the bound: rejected");
        assert_eq!(b.get(), Some(0.5));
        assert!(b.offer(&scored(4, 5, 0.7)), "evicts the 0.5");
        assert_eq!(b.get(), Some(0.7));
        // Equal to the bound: cannot raise the k-th score, skipped.
        assert!(!b.offer(&scored(5, 99, 0.7)));
        assert_eq!(b.get(), Some(0.7));
    }

    #[test]
    fn shared_bound_is_sound_under_concurrent_offers() {
        // Whatever the interleaving, the published bound equals the k-th
        // best of all offered scores (here: 16 distinct scores, k = 4).
        let b = std::sync::Arc::new(SharedBound::new(4));
        crossbeam::thread::scope(|scope| {
            for t in 0..4u16 {
                let b = std::sync::Arc::clone(&b);
                scope.spawn(move |_| {
                    for i in 0..4u16 {
                        let v = t * 4 + i;
                        // v + 1: descriptor values must be non-null.
                        b.offer(&scored(v + 1, 1, f64::from(v) / 16.0));
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(b.get(), Some(12.0 / 16.0));
    }

    #[test]
    fn sorted_output_is_rank_ordered() {
        let mut t = TopK::new(10);
        for (i, s) in [0.3, 0.9, 0.1, 0.9, 0.5].iter().enumerate() {
            t.offer(scored(i as u16 + 1, 7, *s));
        }
        let v = t.into_sorted();
        for w in v.windows(2) {
            assert_ne!(w[0].rank_cmp(&w[1]), Ordering::Greater);
        }
    }
}
