//! Top-k accumulation with the rank of Def. 5(3) and the dynamic
//! `minNhp` upgrade of GRMiner(k) (§V, line 28 of Algorithm 1).

use crate::gr::ScoredGr;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Heap entry ordered so the binary max-heap keeps the *worst-ranked* GR on
/// top, making eviction O(log k).
#[derive(Debug, Clone)]
struct Entry(ScoredGr);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // rank_cmp yields Less when self ranks better; the max-heap must
        // surface the worst entry, so "greater" = "worse" works directly.
        self.0.rank_cmp(&other.0)
    }
}

/// Bounded accumulator of the k best GRs.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl TopK {
    /// Accumulator for the best `k` GRs (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        TopK {
            k,
            // Cap the eager reservation: "effectively unbounded" k values
            // (baseline/ablation configurations) must not pre-allocate.
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
        }
    }

    /// Number of GRs currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no GR has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offer a candidate; returns `true` if it entered the top-k (possibly
    /// evicting the previous k-th).
    pub fn offer(&mut self, gr: ScoredGr) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(Entry(gr));
            return true;
        }
        let worst = self.heap.peek().expect("heap non-empty when full");
        if gr.rank_cmp(&worst.0) == Ordering::Less {
            self.heap.pop();
            self.heap.push(Entry(gr));
            true
        } else {
            false
        }
    }

    /// The dynamic pruning bound: the k-th best score once k GRs are held
    /// (Algorithm 1 line 28 "upgrades minNhp by the non-homophily
    /// preference of the least ranked GR in top\[k\]").
    ///
    /// Pruning against this bound must be *strict* (`score < bound`): an
    /// RHS extension of a candidate tied with the k-th on score could
    /// still win the supp/alphabetical tie-break.
    pub fn dynamic_bound(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.0.score)
        } else {
            None
        }
    }

    /// Consume, returning the GRs best-first.
    pub fn into_sorted(self) -> Vec<ScoredGr> {
        let mut v: Vec<ScoredGr> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_by(|a, b| a.rank_cmp(b));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
    use crate::gr::Gr;
    use grm_graph::NodeAttrId;

    fn gr(val: u16) -> Gr {
        Gr::new(
            NodeDescriptor::from_pairs([(NodeAttrId(0), val)]),
            EdgeDescriptor::empty(),
            NodeDescriptor::from_pairs([(NodeAttrId(1), 1)]),
        )
    }

    fn scored(val: u16, supp: u64, score: f64) -> ScoredGr {
        ScoredGr {
            gr: gr(val),
            supp,
            supp_lw: supp * 2,
            heff: 0,
            score,
        }
    }

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(2);
        assert!(t.offer(scored(1, 10, 0.5)));
        assert!(t.offer(scored(2, 10, 0.9)));
        assert!(t.offer(scored(3, 10, 0.7)), "evicts the 0.5");
        assert!(!t.offer(scored(4, 10, 0.4)), "worse than both");
        let v = t.into_sorted();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].score, 0.9);
        assert_eq!(v[1].score, 0.7);
    }

    #[test]
    fn dynamic_bound_appears_when_full() {
        let mut t = TopK::new(3);
        assert_eq!(t.dynamic_bound(), None);
        t.offer(scored(1, 5, 0.9));
        t.offer(scored(2, 5, 0.8));
        assert_eq!(t.dynamic_bound(), None, "not full yet");
        t.offer(scored(3, 5, 0.7));
        assert_eq!(t.dynamic_bound(), Some(0.7));
        t.offer(scored(4, 5, 0.95));
        assert_eq!(t.dynamic_bound(), Some(0.8), "bound tightens");
    }

    #[test]
    fn ties_break_by_supp_then_gr() {
        let mut t = TopK::new(2);
        t.offer(scored(3, 10, 0.5));
        t.offer(scored(1, 10, 0.5));
        // Same score and supp as the k-th, smaller canonical GR: wins.
        assert!(t.offer(scored(2, 10, 0.5)));
        let v = t.into_sorted();
        assert_eq!(
            v.iter().map(|s| s.gr.l.pairs()[0].1).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // Higher supp beats same score regardless of GR order.
        let mut t = TopK::new(1);
        t.offer(scored(1, 10, 0.5));
        assert!(t.offer(scored(9, 20, 0.5)));
        assert_eq!(t.into_sorted()[0].supp, 20);
    }

    #[test]
    fn k_of_one() {
        let mut t = TopK::new(1);
        t.offer(scored(1, 1, 0.2));
        assert_eq!(t.dynamic_bound(), Some(0.2));
        t.offer(scored(2, 1, 0.6));
        assert_eq!(t.dynamic_bound(), Some(0.6));
        assert_eq!(t.into_sorted().len(), 1);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        TopK::new(0);
    }

    #[test]
    fn sorted_output_is_rank_ordered() {
        let mut t = TopK::new(10);
        for (i, s) in [0.3, 0.9, 0.1, 0.9, 0.5].iter().enumerate() {
            t.offer(scored(i as u16 + 1, 7, *s));
        }
        let v = t.into_sorted();
        for w in v.windows(2) {
            assert_ne!(w[0].rank_cmp(&w[1]), Ordering::Greater);
        }
    }
}
