//! Parsing GRs from their display syntax.
//!
//! The grammar matches what [`crate::Gr::display`] emits, so any GR printed
//! by the miner can be pasted back into the query API (the Remark-3
//! hypothesis cycle from a shell):
//!
//! ```text
//! gr   := lhs ws* arrow ws* rhs
//! arrow:= "->" | "-[" conds "]->"
//! lhs  := "(" conds? ")"        rhs := "(" conds ")"
//! conds:= cond ("," ws* cond)*  cond := name ":" value
//! ```
//!
//! Attribute and value names are resolved against a [`Schema`]; numeric
//! values are accepted for dictionary-less attributes.

use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use crate::gr::Gr;
use grm_graph::{GraphError, Result, Schema};

/// Parse a GR like `(SEX:F, EDU:Grad) -[TYPE:dates]-> (EDU:College)`.
pub fn parse_gr(schema: &Schema, input: &str) -> Result<Gr> {
    let err = |message: &str| GraphError::Parse {
        line: 1,
        message: format!("{message} in `{input}`"),
    };

    let (lhs_raw, rest) = split_once_trim(input, "-").ok_or_else(|| err("missing arrow"))?;
    // rest is like "> (...)" or "[..]-> (...)".
    let (w_raw, rhs_raw) = if let Some(stripped) = rest.strip_prefix('[') {
        let (w, tail) = stripped
            .split_once("]->")
            .ok_or_else(|| err("unterminated edge descriptor"))?;
        (Some(w), tail.trim())
    } else if let Some(tail) = rest.strip_prefix('>') {
        (None, tail.trim())
    } else {
        return Err(err("malformed arrow"));
    };

    let l = parse_node_conds(
        schema,
        strip_parens(lhs_raw).ok_or_else(|| err("LHS needs (…)"))?,
    )?;
    let r = parse_node_conds(
        schema,
        strip_parens(rhs_raw).ok_or_else(|| err("RHS needs (…)"))?,
    )?;
    let w = match w_raw {
        None => EdgeDescriptor::empty(),
        Some(raw) => parse_edge_conds(schema, raw)?,
    };
    if r.is_empty() {
        return Err(err("RHS must not be empty"));
    }
    Ok(Gr::new(l, w, r))
}

fn split_once_trim<'a>(s: &'a str, sep: &str) -> Option<(&'a str, &'a str)> {
    // Split at the first separator that appears *after* the closing paren
    // of the LHS (names may not contain parentheses).
    let close = s.find(')')?;
    let idx = s[close..].find(sep)? + close;
    Some((s[..idx].trim(), s[idx + sep.len()..].trim()))
}

fn strip_parens(s: &str) -> Option<&str> {
    s.trim().strip_prefix('(')?.strip_suffix(')')
}

fn parse_node_conds(schema: &Schema, raw: &str) -> Result<NodeDescriptor> {
    let mut pairs = Vec::new();
    for cond in split_conds(raw) {
        let (name, value) = cond.split_once(':').ok_or(GraphError::Parse {
            line: 1,
            message: format!("condition `{cond}` needs NAME:VALUE"),
        })?;
        let a = schema.node_attr_by_name(name.trim())?;
        let def = schema.node_attr(a);
        let v = def
            .value_by_name(value.trim())
            .or_else(|| value.trim().parse().ok())
            .filter(|&v| v != 0 && v <= def.domain_size())
            .ok_or(GraphError::UnknownName {
                name: format!("{name}:{value}"),
            })?;
        pairs.push((a, v));
    }
    Ok(NodeDescriptor::from_pairs(pairs))
}

fn parse_edge_conds(schema: &Schema, raw: &str) -> Result<EdgeDescriptor> {
    let mut pairs = Vec::new();
    for cond in split_conds(raw) {
        let (name, value) = cond.split_once(':').ok_or(GraphError::Parse {
            line: 1,
            message: format!("condition `{cond}` needs NAME:VALUE"),
        })?;
        let a = schema.edge_attr_by_name(name.trim())?;
        let def = schema.edge_attr(a);
        let v = def
            .value_by_name(value.trim())
            .or_else(|| value.trim().parse().ok())
            .filter(|&v| v != 0 && v <= def.domain_size())
            .ok_or(GraphError::UnknownName {
                name: format!("{name}:{value}"),
            })?;
        pairs.push((a, v));
    }
    Ok(EdgeDescriptor::from_pairs(pairs))
}

fn split_conds(raw: &str) -> impl Iterator<Item = &str> {
    raw.split(',').map(str::trim).filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::SchemaBuilder;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .node_attr_named("SEX", false, ["F", "M"])
            .node_attr_named("EDU", true, ["HS", "College", "Grad"])
            .node_attr("Region", 188, true)
            .edge_attr_named("TYPE", ["dates", "friends"])
            .build()
            .unwrap()
    }

    #[test]
    fn round_trips_display_syntax() {
        let s = schema();
        for text in [
            "(SEX:F, EDU:Grad) -> (EDU:College)",
            "(SEX:M) -[TYPE:dates]-> (SEX:F)",
            "() -> (EDU:HS)",
            "(Region:27) -> (Region:27)",
        ] {
            let gr = parse_gr(&s, text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(gr.display(&s), text, "display must round-trip");
            let again = parse_gr(&s, &gr.display(&s)).unwrap();
            assert_eq!(gr, again);
        }
    }

    #[test]
    fn whitespace_tolerant() {
        let s = schema();
        let gr = parse_gr(&s, "( SEX:F ,EDU:Grad )  ->  ( EDU:College )").unwrap();
        assert_eq!(gr.display(&s), "(SEX:F, EDU:Grad) -> (EDU:College)");
    }

    #[test]
    fn rejects_malformed() {
        let s = schema();
        for bad in [
            "(SEX:F)",                        // no arrow
            "(SEX:F) -> ()",                  // empty RHS
            "(SEX:F) -> (NOPE:1)",            // unknown attr
            "(SEX:F) -> (EDU:PhD)",           // unknown value
            "(SEX:F) -[TYPE:dates-> (SEX:M)", // unterminated edge part
            "(SEX:F) -> (Region:0)",          // null value
            "(SEX:F) -> (Region:9999)",       // out of domain
            "SEX:F -> (SEX:M)",               // missing parens
        ] {
            assert!(parse_gr(&s, bad).is_err(), "should reject `{bad}`");
        }
    }

    #[test]
    fn numeric_values_for_dictionaryless_attrs() {
        let s = schema();
        let gr = parse_gr(&s, "(Region:42) -> (Region:7)").unwrap();
        assert_eq!(gr.l.pairs()[0].1, 42);
        assert_eq!(gr.r.pairs()[0].1, 7);
    }
}
