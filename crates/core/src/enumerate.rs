//! Structural trace of the Subset-First Depth-First enumeration.
//!
//! [`sfdf_subset_order`] replays the *attribute-subset* skeleton of
//! Algorithm 1 — the same `RIGHT`/`EDGE`/`LEFT` control flow and the same
//! dynamic tail ordering as [`crate::miner::GrMiner`], but over subsets
//! instead of data partitions. It exists so the enumeration-order claims of
//! §IV-C can be tested as properties:
//!
//! * **Property 1** — along any path, LHS attributes are added before edge
//!   attributes before RHS attributes (encoded in the visit structure);
//! * **Property 2** — every subset `LWR` is enumerated exactly once, and
//!   before any of its supersets;
//! * **Theorem 3's precondition** — within a RIGHT chain, `Hʳ₂` attributes
//!   (homophily attributes whose counterpart is constrained on the LHS)
//!   enter the RHS before `Hʳ₁`/`NHʳ` attributes.

use crate::tail::Dims;

/// One enumerated attribute subset `LWR`, as bitmasks over attribute ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubsetNode {
    /// LHS node attributes constrained on the path.
    pub l_mask: u64,
    /// Edge attributes constrained on the path.
    pub w_mask: u64,
    /// RHS node attributes constrained on the path.
    pub r_mask: u64,
}

impl SubsetNode {
    /// Componentwise-subset test (the `⊆` of Property 2).
    pub fn is_subset_of(&self, other: &SubsetNode) -> bool {
        self.l_mask & !other.l_mask == 0
            && self.w_mask & !other.w_mask == 0
            && self.r_mask & !other.r_mask == 0
    }
}

/// The order in which Algorithm 1 visits attribute subsets, root first.
pub fn sfdf_subset_order(dims: &Dims) -> Vec<SubsetNode> {
    let mut out = vec![SubsetNode {
        l_mask: 0,
        w_mask: 0,
        r_mask: 0,
    }];
    let t = Trace { dims };
    // Main: RIGHT, EDGE, LEFT over the full tails (lines 3–5).
    t.right(&mut out, &dims.r_order(0), dims.r_order(0).len(), 0, 0, 0);
    t.edge(&mut out, dims.w.len(), 0, 0);
    t.left(&mut out, dims.l.len(), 0);
    out
}

struct Trace<'d> {
    dims: &'d Dims,
}

impl Trace<'_> {
    fn left(&self, out: &mut Vec<SubsetNode>, l_tail_len: usize, l_mask: u64) {
        for i in 0..l_tail_len {
            let m = l_mask | (1u64 << self.dims.l[i].0);
            out.push(SubsetNode {
                l_mask: m,
                w_mask: 0,
                r_mask: 0,
            });
            let order = self.dims.r_order(m);
            self.right(out, &order, order.len(), m, 0, 0);
            self.edge(out, self.dims.w.len(), m, 0);
            self.left(out, i, m);
        }
    }

    fn edge(&self, out: &mut Vec<SubsetNode>, w_tail_len: usize, l_mask: u64, w_mask: u64) {
        for i in 0..w_tail_len {
            let m = w_mask | (1u64 << self.dims.w[i].0);
            out.push(SubsetNode {
                l_mask,
                w_mask: m,
                r_mask: 0,
            });
            let order = self.dims.r_order(l_mask);
            self.right(out, &order, order.len(), l_mask, m, 0);
            self.edge(out, i, l_mask, m);
        }
    }

    fn right(
        &self,
        out: &mut Vec<SubsetNode>,
        order: &[grm_graph::NodeAttrId],
        r_tail_len: usize,
        l_mask: u64,
        w_mask: u64,
        r_mask: u64,
    ) {
        for i in 0..r_tail_len {
            let m = r_mask | (1u64 << order[i].0);
            out.push(SubsetNode {
                l_mask,
                w_mask,
                r_mask: m,
            });
            self.right(out, order, i, l_mask, w_mask, m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::SchemaBuilder;
    use std::collections::HashSet;

    fn dims(node_h: &[bool], edge_attrs: usize) -> Dims {
        let mut sb = SchemaBuilder::new();
        for (i, &h) in node_h.iter().enumerate() {
            sb = sb.node_attr(format!("N{i}"), 2, h);
        }
        for i in 0..edge_attrs {
            sb = sb.edge_attr(format!("E{i}"), 2);
        }
        Dims::all(&sb.build().unwrap())
    }

    #[test]
    fn every_subset_exactly_once() {
        // 3 node attrs, 1 edge attr: 2^3 · 2^1 · 2^3 = 128 subsets.
        let d = dims(&[true, true, false], 1);
        let order = sfdf_subset_order(&d);
        assert_eq!(order.len(), 128);
        let set: HashSet<_> = order.iter().copied().collect();
        assert_eq!(set.len(), 128, "no duplicates");
    }

    #[test]
    fn property2_subsets_before_supersets() {
        let d = dims(&[true, false, true], 1);
        let order = sfdf_subset_order(&d);
        for (i, a) in order.iter().enumerate() {
            for b in &order[i + 1..] {
                assert!(
                    !(b.is_subset_of(a) && b != a),
                    "superset {a:?} enumerated before its subset {b:?}"
                );
            }
        }
    }

    #[test]
    fn paper_fig3_two_homophily_attrs_one_edge_attr() {
        // Fig. 3's setting: homophily node attributes A and B plus the
        // edge attribute W. 2²·2¹·2² = 32 tree nodes including the root
        // (numbered 0..31 in the figure).
        let d = dims(&[true, true], 1);
        let order = sfdf_subset_order(&d);
        assert_eq!(order.len(), 32);
        // The homophily-effect subset {Aˡ, Aʳ} precedes {Aˡ, Aʳ, Bʳ}
        // (needed for the §IV-D Case 1 computation).
        let pos = |l: u64, r: u64| {
            order
                .iter()
                .position(|s| s.l_mask == l && s.w_mask == 0 && s.r_mask == r)
                .unwrap()
        };
        assert!(pos(0b01, 0b01) < pos(0b01, 0b11));
        assert!(pos(0b01, 0b10) < pos(0b01, 0b11));
    }

    #[test]
    fn hr2_enters_rhs_first_on_every_path() {
        // For every enumerated subset whose RHS mixes Hʳ₂ and Hʳ₁/NHʳ
        // attributes, its parent on the enumeration tree (the same subset
        // minus the last-added RHS attr) must retain all Hʳ₂ attrs —
        // i.e. the last-added attr is never in Hʳ₂ when the RHS also
        // contains non-Hʳ₂ attrs. We verify the weaker, order-free
        // consequence actually used by Theorem 3: whenever an enumerated
        // subset has r_mask containing a non-Hʳ₂ attribute, every prefix
        // subset on its RIGHT chain containing only Hʳ₂ attrs appears
        // earlier. The structural guarantee is exercised by
        // `property2_subsets_before_supersets`; here we spot-check the
        // running example of §IV-C.
        let d = dims(&[true, true], 0);
        let order = sfdf_subset_order(&d);
        // Path t8 → t10 → t11 in Fig. 3: l = {B}; the subset {Bˡ, Bʳ}
        // (Hʳ₂ value first) is enumerated before {Bˡ, Aʳ, Bʳ}.
        let pos = |l: u64, r: u64| {
            order
                .iter()
                .position(|s| s.l_mask == l && s.r_mask == r)
                .unwrap()
        };
        assert!(pos(0b10, 0b10) < pos(0b10, 0b11));
    }

    #[test]
    fn counts_scale_with_dimensions() {
        for (nh, e, expected) in [
            (vec![true], 0, 4usize),    // 2^1·2^1
            (vec![true, false], 0, 16), // 2^2·2^2
            (vec![true, false], 2, 64), // 2^2·2^2·2^2
        ] {
            let d = dims(&nh, e);
            assert_eq!(sfdf_subset_order(&d).len(), expected);
        }
    }
}
