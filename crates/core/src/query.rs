//! Ad-hoc evaluation of a single GR — the hypothesis cycle of Remark 3.
//!
//! The paper's workflow: mine top-k GRs as an *entry point*, then "the
//! human analyst starts with top-k GRs found, forms new hypothesis through
//! varying the GRs found, and compares such hypothesis as well as data
//! distribution" (Remark 3; the P5/P207 variations of §VI-B are exactly
//! this). [`evaluate`] measures any user-supplied GR in one scan.

use crate::beta::{beta, l_beta, BetaSet};
use crate::gr::Gr;
use grm_graph::{NodeAttrId, SocialGraph};
use serde::{Deserialize, Serialize};

/// Full measurement of one GR against a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrMeasures {
    /// Absolute support `|E(l ∧ w ∧ r)|`.
    pub supp: u64,
    /// `|E(l ∧ w)|`.
    pub supp_lw: u64,
    /// `|E(r)|` (RHS marginal over all edges).
    pub supp_r: u64,
    /// Homophily-effect support `|E(l -w-> l[β])|`.
    pub heff: u64,
    /// `|E|`.
    pub edges: u64,
    /// The β attributes (Eqn. 4).
    pub beta_attrs: Vec<NodeAttrId>,
    /// Relative support `supp / |E|` (Def. 2).
    pub supp_rel: f64,
    /// Confidence (Def. 3); `None` when `supp_lw = 0`.
    pub conf: Option<f64>,
    /// Non-homophily preference (Def. 4); `None` when undefined
    /// (`supp = 0` and the denominator vanishes, or `supp_lw = 0`).
    pub nhp: Option<f64>,
}

/// Measure `gr` against `graph` in a single pass over the edges.
pub fn evaluate(graph: &SocialGraph, gr: &Gr) -> GrMeasures {
    let (supp, supp_lw, supp_r, heff) = counts(graph, gr);
    GrMeasures::from_counts(
        graph.schema(),
        gr,
        supp,
        supp_lw,
        supp_r,
        heff,
        graph.edge_count() as u64,
    )
}

/// The four raw edge counts of `gr` over `graph`'s edges:
/// `(supp, supp_lw, supp_r, heff)`. Each is a sum of per-edge
/// indicators, so all four are *additive over any partition of the edge
/// set* — the sharded miner ([`crate::sharded`]) evaluates a GR on an
/// out-of-core graph by summing these per shard and deriving the
/// measures once with [`GrMeasures::from_counts`].
pub fn counts(graph: &SocialGraph, gr: &Gr) -> (u64, u64, u64, u64) {
    let schema = graph.schema();
    let b: BetaSet = beta(schema, &gr.l, &gr.r);
    let lbeta = l_beta(&gr.l, b);

    let mut supp = 0u64;
    let mut supp_lw = 0u64;
    let mut supp_r = 0u64;
    let mut heff = 0u64;

    for e in graph.edge_ids() {
        let r_match = gr.r.pairs().iter().all(|&(a, v)| graph.dst_attr(e, a) == v);
        if r_match {
            supp_r += 1;
        }
        let lw_match = gr.l.pairs().iter().all(|&(a, v)| graph.src_attr(e, a) == v)
            && gr
                .w
                .pairs()
                .iter()
                .all(|&(a, v)| graph.edge_attr(e, a) == v);
        if !lw_match {
            continue;
        }
        supp_lw += 1;
        if r_match {
            supp += 1;
        }
        if !b.is_empty() && lbeta.iter().all(|&(a, v)| graph.dst_attr(e, a) == v) {
            heff += 1;
        }
    }
    (supp, supp_lw, supp_r, heff)
}

impl GrMeasures {
    /// Derive the full measurement from the four raw counts (see
    /// [`counts`]) and the global edge total. The derived-field formulas
    /// are the single source of truth for both the one-graph
    /// [`evaluate`] and the sharded summed-counts path, so the two can
    /// never drift.
    #[allow(clippy::too_many_arguments)]
    pub fn from_counts(
        schema: &grm_graph::Schema,
        gr: &Gr,
        supp: u64,
        supp_lw: u64,
        supp_r: u64,
        heff: u64,
        edges: u64,
    ) -> Self {
        let b: BetaSet = beta(schema, &gr.l, &gr.r);
        let conf = (supp_lw > 0).then(|| supp as f64 / supp_lw as f64);
        let denom = supp_lw.saturating_sub(heff);
        let nhp = (denom > 0).then(|| supp as f64 / denom as f64);
        GrMeasures {
            supp,
            supp_lw,
            supp_r,
            heff,
            edges,
            beta_attrs: b.iter().collect(),
            supp_rel: if edges > 0 {
                supp as f64 / edges as f64
            } else {
                0.0
            },
            conf,
            nhp,
        }
    }

    /// One-line summary, e.g. `supp=2 (13.3%), conf=33.3%, nhp=100.0%`.
    pub fn summary(&self) -> String {
        let pct = |v: Option<f64>| match v {
            Some(x) => format!("{:.1}%", x * 100.0),
            None => "n/a".to_string(),
        };
        format!(
            "supp={} ({:.1}%), conf={}, nhp={}",
            self.supp,
            self.supp_rel * 100.0,
            pct(self.conf),
            pct(self.nhp)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gr::GrBuilder;
    use grm_graph::{GraphBuilder, SchemaBuilder};

    /// The Example-2 situation: females with Grad education mostly date
    /// Grad men (homophily), but *always* College men otherwise.
    fn example2_graph() -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr_named("SEX", false, ["F", "M"])
            .node_attr_named("EDU", true, ["HS", "College", "Grad"])
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let f = b.add_node(&[1, 3]).unwrap(); // F, Grad
        let f2 = b.add_node(&[1, 3]).unwrap();
        let m_grad = b.add_node(&[2, 3]).unwrap();
        let m_coll = b.add_node(&[2, 2]).unwrap();
        // 6 edges from F-Grad: 4 to Grad men, 2 to College men.
        b.add_edge(f, m_grad, &[]).unwrap();
        b.add_edge(f2, m_grad, &[]).unwrap();
        b.add_edge(f, m_grad, &[]).unwrap();
        b.add_edge(f2, m_grad, &[]).unwrap();
        b.add_edge(f, m_coll, &[]).unwrap();
        b.add_edge(f2, m_coll, &[]).unwrap();
        // Noise edges from other groups.
        for _ in 0..9 {
            b.add_edge(m_grad, f, &[]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn gr4_nhp_is_100_percent() {
        let g = example2_graph();
        let s = g.schema();
        let gr4 = GrBuilder::new(s)
            .l("SEX", "F")
            .l("EDU", "Grad")
            .r("SEX", "M")
            .r("EDU", "College")
            .build()
            .unwrap();
        let m = evaluate(&g, &gr4);
        assert_eq!(m.supp, 2);
        assert_eq!(m.supp_lw, 6);
        assert_eq!(m.heff, 4, "homophily effect = edges to EDU:Grad");
        assert_eq!(m.beta_attrs.len(), 1);
        assert!((m.conf.unwrap() - 2.0 / 6.0).abs() < 1e-12);
        assert!((m.nhp.unwrap() - 1.0).abs() < 1e-12, "Example 2's 100%");
        assert!(m.summary().contains("nhp=100.0%"));
    }

    #[test]
    fn gr3_nhp_equals_conf_for_trivial_pattern() {
        let g = example2_graph();
        let s = g.schema();
        let gr3 = GrBuilder::new(s)
            .l("SEX", "F")
            .l("EDU", "Grad")
            .r("SEX", "M")
            .r("EDU", "Grad")
            .build()
            .unwrap();
        let m = evaluate(&g, &gr3);
        // Same EDU value on both sides: β = ∅, nhp degenerates to conf.
        assert!(m.beta_attrs.is_empty());
        assert_eq!(m.conf, m.nhp);
        assert_eq!(m.supp, 4);
    }

    #[test]
    fn unmatched_lhs_yields_none() {
        let g = example2_graph();
        let s = g.schema();
        let gr = GrBuilder::new(s)
            .l("SEX", "M")
            .l("EDU", "HS")
            .r("SEX", "F")
            .build()
            .unwrap();
        let m = evaluate(&g, &gr);
        assert_eq!(m.supp_lw, 0);
        assert_eq!(m.conf, None);
        assert_eq!(m.nhp, None);
        assert!(m.summary().contains("n/a"));
    }

    #[test]
    fn marginal_counts_whole_graph() {
        let g = example2_graph();
        let s = g.schema();
        let gr = GrBuilder::new(s).r("SEX", "F").build().unwrap();
        let m = evaluate(&g, &gr);
        assert_eq!(m.supp_r, 9, "nine noise edges point at females");
        assert_eq!(m.edges, 15);
    }
}
