//! Sharded, memory-budgeted out-of-core mining — breaking the compact
//! model's u32 edge cap.
//!
//! The in-core engines ([`crate::miner`], [`crate::parallel`]) require
//! the whole edge set resident as one `CompactModel`, whose position
//! indices are `u32` ([`CompactModel::MAX_EDGES`]). This module mines a
//! [`ShardStore`] instead: the edges live in columnar per-shard spill
//! files on disk (partitioned by the dominant LHS attribute's values),
//! and at any moment only the shards/slices the active root tasks need
//! are resident, managed by an LRU [`ShardPool`] under a fixed memory
//! budget.
//!
//! ## The per-value slice decomposition
//!
//! Naively mining each shard and merging is *not* bit-identical to the
//! unsharded run: every support a root task other than the dominant
//! LEFT dimension counts (`supp_lw`, partition lengths, heff snapshots)
//! spans edges from *all* shards. The engine instead decomposes the
//! sequential Main loop ([`RootTask::all`]) into units that are each
//! exactly one top-level partition-value subtree, over an edge set that
//! provably contains every edge that subtree touches:
//!
//! * **`Left(j)`, dominant dimension** (`dims.l[j]` is the store's
//!   partition attribute): shard `s` holds *precisely* the edges whose
//!   source carries a value in the shard's range, so running
//!   [`RootTask::LeftValues`] with that range on shard `s`'s model is
//!   the identical enumeration (the partitioner emits only non-empty
//!   partitions, and the value filter precedes every counter).
//! * **`Left(j)`, other dimensions**: one unit per non-null value `v`,
//!   over the [`SliceSet`] keyed `Src(dims.l[j])` — the slice is the
//!   `v` partition of the top-level LEFT pass, mined with
//!   `LeftValues { lo: v, hi: v }`.
//! * **`Edge(i)`**: one unit per value over the `Edge(dims.w[i])`
//!   slices; the slice is the `v` partition of the top-level EDGE pass.
//! * **`Right`**: one unit per dimension of the empty-LHS RHS order and
//!   value, over `Dst(r_order[dim])` slices, via
//!   [`RootTask::RightDim`] — which overrides `supp_lw` with the
//!   *global* edge count, the one denominator a slice cannot supply.
//!
//! NULL-keyed edges are dropped from slices exactly as the recursion
//! skips NULL partitions, and empty slices are skipped exactly as the
//! partitioner never emits empty partitions, so every *semantic*
//! counter ([`MinerStats::semantic`]) matches the in-core engines
//! bit-for-bit (static configurations; dynamic top-k counters are
//! timing-dependent in any parallel engine).
//!
//! Each unit is a collect-mode [`Run`] whose [`MiningContext`] carries
//! the global edge total ([`MiningContext::with_edges_total`]), feeding
//! the same [`SharedBound`] and the same exactness-verified post-pass
//! as the parallel engine — with one twist: the post-pass evaluator
//! measures candidate suppressors by summing [`query::counts`] over
//! every shard (the four counts are per-edge indicators, hence additive
//! over any partition of the edges), so the verification is exact
//! without ever holding the whole graph.
//!
//! Metrics that need global RHS marginal tables (lift,
//! Piatetsky-Shapiro, conviction —
//! [`RankMetric::needs_r_marginal`](crate::metrics::RankMetric::needs_r_marginal))
//! are rejected with [`MinerError::UnsupportedMetric`]: their
//! per-descriptor marginal memo assumes one resident model.
//!
//! ## Fault tolerance
//!
//! The engine observes the config's [`CancelToken`] and deadline at
//! unit and recursion-node granularity (the pool's blocked waiters
//! observe the same token), contains worker panics with
//! `catch_unwind`, and drains every cleanly-exited worker's counters
//! into the typed error — see [`MinerError`].

use crate::config::MinerConfig;
use crate::context::MiningContext;
use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use crate::error::{panic_message, MinerError};
use crate::gr::ScoredGr;
use crate::miner::{MineResult, MinerScratch, RootTask, Run};
use crate::parallel::{classic_select_topk, resolve_threads, select_topk_verified};
use crate::query;
use crate::stats::MinerStats;
use crate::tail::Dims;
use crate::topk::SharedBound;
use grm_graph::shard::{resident_cost, ShardPool, ShardStore, SliceKey, SliceSet};
use grm_graph::{
    check_edge_capacity, failpoint, AttrValue, CancelToken, CompactModel, GraphError, SocialGraph,
};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Tuning knobs for [`mine_sharded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardedOptions {
    /// Worker count (0 = available parallelism). Workers pull units off
    /// a shared dispenser; each holds at most one resident shard/slice
    /// at a time, so `threads` bounds concurrent residency.
    pub threads: usize,
    /// Maximum resident bytes of loaded shards/slices (`None` =
    /// unbounded). Enforced by the [`ShardPool`]:
    /// `shard_resident_bytes_peak ≤ budget` holds by construction, and
    /// a budget too small for even one needed shard fails with
    /// [`GraphError::MemoryBudgetTooSmall`].
    pub memory_budget: Option<u64>,
}

/// Failure modes of a sharded mine — the crate-wide [`MinerError`]
/// (this alias predates the unified type and keeps existing `match`
/// paths compiling).
pub type ShardedError = MinerError;

/// One independent unit of sharded work: a root task over one resident
/// edge set (module docs).
#[derive(Debug, Clone, Copy)]
enum Unit {
    /// A persistent shard, leased from the pool.
    Shard { shard: usize, task: RootTask },
    /// One value slice of a [`SliceSet`], loaded under a reservation.
    Slice {
        set: usize,
        value: AttrValue,
        task: RootTask,
    },
}

/// What one executed unit hands back for the deterministic merge.
type UnitOut = (
    Vec<ScoredGr>,
    MinerStats,
    Vec<(NodeDescriptor, EdgeDescriptor)>,
);

/// Mine the top-k GRs of an out-of-core [`ShardStore`] under
/// `opts.memory_budget`, bit-identical to the in-core engines on the
/// same edge set (module docs). Results are deterministic across thread
/// counts and shard counts.
pub fn mine_sharded(
    store: &ShardStore,
    config: &MinerConfig,
    opts: &ShardedOptions,
) -> Result<MineResult, ShardedError> {
    if config.metric.needs_r_marginal() {
        return Err(ShardedError::UnsupportedMetric(config.metric));
    }
    let start = Instant::now();
    let schema = store.schema();
    let dims = Dims::all(schema);
    let total_edges = store.total_edges();
    let threads = resolve_threads(opts.threads);
    // Materialized so an expired deadline or a panicking worker always
    // has a real flag to trip for its siblings (and for the pool's
    // blocked waiters), even when the caller passed the inert default.
    let token = config.cancel.materialize();
    let deadline = config
        .deadline_ms
        .map(|ms| start + Duration::from_millis(ms));
    let faults_before = failpoint::fired_total();

    // Build the slice sets and the unit list in the sequential Main
    // order (RIGHT, EDGE dimensions, LEFT dimensions). Every slice is
    // capacity-checked up front: a value slice beyond the u32 position
    // space cannot be mined by the per-unit compact model, and the
    // check here turns that into a typed error instead of a failed
    // build mid-run.
    let mut sets: Vec<SliceSet> = Vec::new();
    let mut units: Vec<Unit> = Vec::new();
    for (dim, &attr) in dims.r_order(0).iter().enumerate() {
        add_slice_units(store, &mut sets, &mut units, SliceKey::Dst(attr), &|_| {
            RootTask::RightDim { dim }
        })?;
    }
    for (i, &attr) in dims.w.iter().enumerate() {
        add_slice_units(store, &mut sets, &mut units, SliceKey::Edge(attr), &|_| {
            RootTask::Edge(i)
        })?;
    }
    for (j, &attr) in dims.l.iter().enumerate() {
        if attr == store.spec().attr() {
            for s in 0..store.shard_count() {
                if store.edge_count(s) == 0 {
                    continue;
                }
                let (lo, hi) = store.spec().range(s);
                units.push(Unit::Shard {
                    shard: s,
                    task: RootTask::LeftValues { dim: j, lo, hi },
                });
            }
        } else {
            add_slice_units(store, &mut sets, &mut units, SliceKey::Src(attr), &|v| {
                RootTask::LeftValues {
                    dim: j,
                    lo: v,
                    hi: v,
                }
            })?;
        }
    }

    let pool = ShardPool::new(store, opts.memory_budget)?.with_cancel(token.clone());
    let shared = SharedBound::new(config.k);
    let mut stats = MinerStats::default();
    let mut candidates: Vec<ScoredGr> = Vec::new();
    let mut pruned_frontiers: HashSet<(NodeDescriptor, EdgeDescriptor)> = HashSet::new();

    if !units.is_empty() {
        // Per-unit result slots, indexed by unit, so the merge below is
        // a fixed-order walk regardless of which worker ran what when.
        let slots: Mutex<Vec<Option<UnitOut>>> =
            Mutex::new((0..units.len()).map(|_| None).collect());
        let first_error: Mutex<Option<ShardedError>> = Mutex::new(None);
        // First worker panic message; its writer also trips `token` so
        // the siblings (and the pool's blocked waiters) drain and exit.
        let panicked: Mutex<Option<String>> = Mutex::new(None);
        // Worker loop-top flag probes, merged into `stats.cancel_checks`
        // after the join so a cancelled mine always reports a non-zero
        // drained probe count even when no unit body ran.
        let loop_probes = AtomicU64::new(0);
        let next = AtomicUsize::new(0);
        let workers = threads.min(units.len()).max(1);

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let units = &units;
                let sets = &sets;
                let pool = &pool;
                let slots = &slots;
                let first_error = &first_error;
                let panicked = &panicked;
                let next = &next;
                let shared = &shared;
                let dims = &dims;
                let token = &token;
                let loop_probes = &loop_probes;
                scope.spawn(move |_| {
                    let mut scratch = MinerScratch::default();
                    loop {
                        if first_error.lock().is_some() {
                            break;
                        }
                        // ordering: Release — a pure work counter the
                        // scope join already orders before the merge
                        // reads it; Release (over Relaxed) because the
                        // atomics audit treats any Relaxed RMW as a
                        // protocol smell, and this runs once per
                        // unit — off any hot inner path.
                        loop_probes.fetch_add(1, Ordering::Release);
                        // The model's loop-top flag check (see
                        // grm_analyze::model::cancel): at most one
                        // stale unit starts after the flag is set.
                        if token.is_cancelled() {
                            break;
                        }
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            token.cancel();
                            break;
                        }
                        // ordering: SeqCst unit dispenser. The only
                        // required property is that each index is
                        // handed out exactly once, which any ordering
                        // of an atomic RMW gives; SeqCst is chosen
                        // because grm-analyze's atomics rule treats
                        // Relaxed RMWs as protocol smells, and the
                        // dispenser runs once per unit — far off any
                        // hot path. (The residency protocol itself is
                        // checked by `grm_analyze::model::shard`.)
                        let u = next.fetch_add(1, Ordering::SeqCst);
                        if u >= units.len() {
                            break;
                        }
                        // Containment envelope: a panic inside the unit
                        // (the miner, a storage layer bug, or an
                        // injected "worker.body" fault) is caught,
                        // latched, and converted into a cancellation of
                        // the siblings. AssertUnwindSafe is sound
                        // because on the Err path this worker publishes
                        // nothing from the broken unit and exits.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            if let Some(failpoint::FaultKind::Panic) = failpoint::hit("worker.body")
                            {
                                // lint: allow(panic-in-hot-path) — deliberate injected fault, caught by this very envelope.
                                panic!("injected panic at worker.body");
                            }
                            run_unit(
                                store,
                                sets,
                                pool,
                                units[u],
                                config,
                                dims,
                                shared,
                                total_edges,
                                token,
                                deadline,
                                &mut scratch,
                            )
                        }));
                        match caught {
                            Ok(Ok(out)) => slots.lock()[u] = Some(out),
                            Ok(Err(e)) => {
                                let mut g = first_error.lock();
                                if g.is_none() {
                                    *g = Some(e);
                                }
                                break;
                            }
                            Err(payload) => {
                                // Latch the message *before* tripping
                                // the flag (`cancel`'s Release publishes
                                // it to every observer).
                                let mut first = panicked.lock();
                                if first.is_none() {
                                    *first = Some(panic_message(payload));
                                }
                                drop(first);
                                token.cancel();
                                break;
                            }
                        }
                    }
                });
            }
        })
        // lint: allow(panic-in-hot-path) — unit panics are contained by
        // the catch_unwind envelope above, so this fires only if the
        // containment bookkeeping itself panicked; re-raising that is
        // the only correct move.
        .expect("worker panicked outside the containment envelope");

        // Drain every completed unit's counters and candidates — also
        // on the failure paths below, where the counters ride out in
        // the typed error.
        for (mut grs, s, pruned) in slots.into_inner().into_iter().flatten() {
            stats.merge(&s);
            candidates.append(&mut grs);
            pruned_frontiers.extend(pruned);
        }
        // ordering: Relaxed — all workers joined above; see the bump.
        stats.cancel_checks += loop_probes.load(Ordering::Relaxed);

        let panic_msg = panicked.into_inner();
        let first = first_error.into_inner();
        if panic_msg.is_some() || first.is_some() || token.is_cancelled() {
            collect_engine_stats(&mut stats, &pool, store, &sets, faults_before);
            stats.elapsed = start.elapsed();
            let partial_stats = Box::new(stats);
            return Err(match (panic_msg, first) {
                (Some(message), _) => MinerError::WorkerPanicked {
                    message,
                    partial_stats,
                },
                // A worker that lost a pool-acquire race to the flag
                // surfaces GraphError::Cancelled — the same condition
                // as the flag itself.
                (None, Some(MinerError::Graph(GraphError::Cancelled))) | (None, None) => {
                    MinerError::Cancelled { partial_stats }
                }
                (None, Some(e)) => e,
            });
        }
    }

    // Sequential post-pass — the same exactness logic as the parallel
    // engine, with the candidate-suppressor evaluator summing per-shard
    // counts instead of scanning one resident graph. Evaluation errors
    // (I/O on a shard re-load) are latched and surfaced after the walk:
    // the evaluator signature is infallible by design.
    let mut eval_err: Option<GraphError> = None;
    let final_bound = shared.get();
    let top = if config.generality_filter && final_bound.is_some() {
        let mut evaluate = |g: &crate::gr::Gr| {
            let (mut supp, mut supp_lw, mut supp_r, mut heff) = (0u64, 0u64, 0u64, 0u64);
            for s in 0..store.shard_count() {
                if store.edge_count(s) == 0 {
                    continue;
                }
                match pool.acquire(s) {
                    Ok(lease) => {
                        let (a, b, c, d) = query::counts(lease.graph(), g);
                        supp += a;
                        supp_lw += b;
                        supp_r += c;
                        heff += d;
                    }
                    Err(e) => {
                        if eval_err.is_none() {
                            eval_err = Some(e);
                        }
                    }
                }
            }
            query::GrMeasures::from_counts(schema, g, supp, supp_lw, supp_r, heff, total_edges)
        };
        select_topk_verified(
            schema,
            &mut evaluate,
            config,
            candidates,
            &pruned_frontiers,
            &mut stats,
        )
    } else {
        classic_select_topk(config, candidates, &mut stats)
    };
    if let Some(e) = eval_err {
        if matches!(e, GraphError::Cancelled) {
            collect_engine_stats(&mut stats, &pool, store, &sets, faults_before);
            stats.elapsed = start.elapsed();
            return Err(MinerError::Cancelled {
                partial_stats: Box::new(stats),
            });
        }
        return Err(e.into());
    }

    collect_engine_stats(&mut stats, &pool, store, &sets, faults_before);
    stats.elapsed = start.elapsed();
    Ok(MineResult {
        top,
        stats,
        edge_count: total_edges,
    })
}

/// Fold the storage-layer counters into `stats`: pool residency, the
/// bounded spill retries the store and the slice sets performed, and
/// the fault-injection delta since the mine began (always zero without
/// the `fault-inject` feature).
fn collect_engine_stats(
    stats: &mut MinerStats,
    pool: &ShardPool,
    store: &ShardStore,
    sets: &[SliceSet],
    faults_before: u64,
) {
    let pool_stats = pool.stats();
    stats.shards_built = store.shard_count() as u64;
    stats.shard_loads = pool_stats.loads;
    stats.shard_evictions = pool_stats.evictions;
    stats.shard_resident_bytes_peak = pool_stats.resident_bytes_peak;
    stats.spill_retries +=
        store.spill_retries() + sets.iter().map(|s| s.spill_retries()).sum::<u64>();
    stats.faults_injected += failpoint::fired_total().saturating_sub(faults_before);
}

/// Build the [`SliceSet`] for `key` and append one [`Unit::Slice`] per
/// non-empty value, with `task_of(value)` as its root task. Empty
/// values are skipped — the in-core partitioner never emits empty
/// partitions, so the skip is counter-exact — and every slice is
/// capacity-checked against the per-unit compact model's position
/// space.
fn add_slice_units<'s>(
    store: &'s ShardStore,
    sets: &mut Vec<SliceSet<'s>>,
    units: &mut Vec<Unit>,
    key: SliceKey,
    task_of: &dyn Fn(AttrValue) -> RootTask,
) -> Result<(), ShardedError> {
    let dir = store.dir().join(format!("slice-{}", sets.len()));
    let set = SliceSet::build(store, key, dir)?;
    let idx = sets.len();
    for v in 1..=set.value_count() {
        let v = v as AttrValue;
        let edges = set.edge_count(v);
        if edges == 0 {
            continue;
        }
        check_edge_capacity(edges as usize, CompactModel::MAX_EDGES)?;
        units.push(Unit::Slice {
            set: idx,
            value: v,
            task: task_of(v),
        });
    }
    sets.push(set);
    Ok(())
}

/// Execute one unit: make its edge set resident (shard lease or slice
/// load under a reservation), run the root task in collect mode against
/// a model-sized context carrying the global edge total, and hand back
/// the collected candidates, stats, and pruned `l ∧ w` frontiers.
#[allow(clippy::too_many_arguments)]
fn run_unit(
    store: &ShardStore,
    sets: &[SliceSet],
    pool: &ShardPool,
    unit: Unit,
    config: &MinerConfig,
    dims: &Dims,
    shared: &SharedBound,
    total_edges: u64,
    token: &CancelToken,
    deadline: Option<Instant>,
    scratch: &mut MinerScratch,
) -> Result<UnitOut, ShardedError> {
    match unit {
        Unit::Shard { shard, task } => {
            let lease = pool.acquire(shard)?;
            run_task(
                lease.graph(),
                task,
                config,
                dims,
                shared,
                total_edges,
                token,
                deadline,
                scratch,
            )
        }
        Unit::Slice { set, value, task } => {
            let slice = &sets[set];
            let cost = resident_cost(
                store.schema(),
                store.node_count(),
                slice.edge_count(value) as usize,
            );
            // Hold the budget before materializing; dropped with the
            // graph when this unit finishes.
            let _hold = pool.reserve(cost)?;
            let graph = slice.load(value)?;
            run_task(
                &graph,
                task,
                config,
                dims,
                shared,
                total_edges,
                token,
                deadline,
                scratch,
            )
        }
    }
}

/// One collect-mode [`Run`] over a resident graph (see
/// [`MiningContext::with_edges_total`] for the denominator override).
#[allow(clippy::too_many_arguments)]
fn run_task(
    graph: &SocialGraph,
    task: RootTask,
    config: &MinerConfig,
    dims: &Dims,
    shared: &SharedBound,
    total_edges: u64,
    token: &CancelToken,
    deadline: Option<Instant>,
    scratch: &mut MinerScratch,
) -> Result<UnitOut, ShardedError> {
    let unit_start = Instant::now();
    let model = CompactModel::try_build(graph)?;
    let ctx = MiningContext::with_edges_total(model, false, total_edges);
    let mut run = Run::new(&ctx, graph.schema(), dims, config, Some(Vec::new()))
        .with_scratch(std::mem::take(scratch))
        .with_cancellation(token.clone(), deadline);
    if config.dynamic_topk {
        run = run.with_shared_bound(shared);
    }
    let mut data: Vec<u32> = Vec::new();
    ctx.fill_positions(&mut data);
    run.run_root(&mut data, task);
    let mut s = std::mem::take(&mut run.stats);
    s.elapsed = unit_start.elapsed();
    let pruned = std::mem::take(&mut run.pruned_lw);
    let (collected, warm) = run.into_collected_and_scratch();
    *scratch = warm;
    Ok((collected, s, pruned))
}
