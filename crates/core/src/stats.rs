//! Instrumentation counters for mining runs.
//!
//! Theorem 4(2) claims GRMiner's work is proportional to the number of GRs
//! examined; these counters make that claim measurable (and drive the
//! Fig. 4 analyses, where the pruning power of `minNhp` and the dynamic
//! top-k threshold is the whole story).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters collected during one mining run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MinerStats {
    /// Enumeration-tree nodes visited (attribute-set × partition).
    pub partitions_examined: u64,
    /// Candidate GRs examined at RIGHT nodes (r non-empty).
    pub grs_examined: u64,
    /// Partitions discarded by the `minSupp` threshold.
    pub pruned_by_supp: u64,
    /// RIGHT partitions whose subtree was cut by the score threshold
    /// (user `min_score`, or the dynamically upgraded top-k bound).
    pub pruned_by_score: u64,
    /// GRs rejected as trivial (§III-B).
    pub rejected_trivial: u64,
    /// GRs rejected because a more general GR was already accepted
    /// (Def. 5(2)).
    pub rejected_generality: u64,
    /// GRs accepted into the candidate pool (offered to the top-k heap).
    pub accepted: u64,
    /// Homophily-effect snapshot scans performed. One group-by pass fills
    /// every β support of an `l ∧ w` node at once, so this counts at most
    /// one scan per node reaching a non-empty β (on the wide-LHS fallback
    /// path it counts per-β memo misses, as before).
    pub heff_scans: u64,
    /// Counting-sort partition passes over an edge-position slice
    /// (LEFT/EDGE/RIGHT dimensions plus β group-by passes). A *work*
    /// counter, not a semantic one: the parallel miner's value-chunk
    /// splitting legitimately repeats top-level passes, so this varies
    /// with threading while [`MinerStats::semantic`] stays fixed.
    pub partition_passes: u64,
    /// Partition passes that consumed a histogram pre-counted by their
    /// parent's fused two-level pass, skipping their own counting phase
    /// (one memory pass over the slice instead of two). Always ≤
    /// `partition_passes`; zero with `MinerConfig::fuse_partitions` off.
    pub fused_passes: u64,
    /// Full `grm_graph::kernel::LANES`-wide batches processed by the
    /// vectorized counting kernels (gather, histogram, mask and fused
    /// scatter loops). A *work* counter: task splitting legitimately
    /// repeats passes, so this varies with threading; zero with
    /// `MinerConfig::use_kernel` off.
    pub kernel_batches: u64,
    /// High-water mark, in bytes, of the partition arena's owned scratch
    /// (`grm_graph::sort::PartitionArena::peak_bytes`). Stable across
    /// repeated identical runs — the zero-allocation guarantee made
    /// observable. Merged with `max`.
    pub scratch_bytes_peak: u64,
    /// Successful cross-worker steal operations in the parallel engine
    /// (each moves a steal-half batch from a sibling's deque). A *work*
    /// counter: inherently timing-dependent, zero in sequential runs and
    /// with `--no-steal`.
    pub tasks_stolen: u64,
    /// Oversized recursion subtrees the parallel miner detached into
    /// stealable tasks (`SubtreeTask`). A *work* counter: depends on the
    /// split policy and thread count, never on the mined data's
    /// semantics.
    pub subtree_splits: u64,
    /// Times a worker tightened the shared dynamic top-k bound (the
    /// collect-mode restoration of Algorithm 1 line 28). A *work*
    /// counter: the tightening sequence depends on worker timing even
    /// though the final results do not.
    pub bound_tightenings: u64,
    /// Persistent shards the sharded miner's store was partitioned into
    /// (`grm_core::sharded`). A *work* counter: zero for in-core runs,
    /// and any shard count yields bit-identical results.
    pub shards_built: u64,
    /// Shard loads performed by the sharded miner's residency pool —
    /// cold acquisitions that read a spill file into memory. A *work*
    /// counter: depends on the memory budget and worker timing.
    pub shard_loads: u64,
    /// Resident shards evicted by the residency pool to make room under
    /// the memory budget. A *work* counter: `shard_loads - shard_count`
    /// re-loads were caused by these.
    pub shard_evictions: u64,
    /// High-water mark, in bytes, of resident shard/slice bytes in the
    /// sharded miner's pool (`≤` the configured memory budget by
    /// construction). Merged with `max`, like `scratch_bytes_peak`.
    pub shard_resident_bytes_peak: u64,
    /// Cancellation-flag probes performed (worker loop-top,
    /// recursion-node and shard-load granularity; see
    /// `grm_graph::cancel`). A *work* counter: varies with task
    /// splitting and thread count. Zero for a sequential mine without a
    /// token or deadline; the parallel and sharded engines always
    /// materialize a token for their workers, so they always probe.
    pub cancel_checks: u64,
    /// Faults injected by the deterministic failpoint registry
    /// (`grm_graph::failpoint`). Always zero without the `fault-inject`
    /// feature; a *work* counter driven entirely by the test schedule.
    pub faults_injected: u64,
    /// Transient spill-write failures that were retried (and recovered
    /// from) while writing shard/slice files — bounded to one retry per
    /// chunk. A *work* counter: zero for in-core runs and fault-free
    /// sharded runs.
    pub spill_retries: u64,
    /// Requests the GR service (`grm_core::service`) answered with a
    /// success response — any request type, over the daemon's lifetime.
    /// A *work* counter: zero outside service mode, and aggregated in
    /// the service's long-lived stats, never in a single mine's.
    pub requests_served: u64,
    /// Requests the service's admission controller shed with a typed
    /// `Overloaded` response (no slot free, bounded queue full). A
    /// *work* counter: purely a function of concurrent load.
    pub requests_shed: u64,
    /// Mine requests served straight from the deterministic result
    /// cache (a mine is a pure function of its config). A *work*
    /// counter: depends on request history, not mining semantics.
    pub cache_hits: u64,
    /// Mine requests that coalesced onto another request's in-flight
    /// identical mine (single-flight deduplication) instead of mining
    /// themselves. A *work* counter: purely a function of request
    /// timing.
    pub cache_coalesced: u64,
    /// Wall-clock time of the run.
    #[serde(with = "duration_serde")]
    pub elapsed: Duration,
}

impl MinerStats {
    /// Merge counters from another run segment (used by the parallel
    /// miner; `elapsed` takes the max, counters add).
    pub fn merge(&mut self, other: &MinerStats) {
        self.partitions_examined += other.partitions_examined;
        self.grs_examined += other.grs_examined;
        self.pruned_by_supp += other.pruned_by_supp;
        self.pruned_by_score += other.pruned_by_score;
        self.rejected_trivial += other.rejected_trivial;
        self.rejected_generality += other.rejected_generality;
        self.accepted += other.accepted;
        self.heff_scans += other.heff_scans;
        self.partition_passes += other.partition_passes;
        self.fused_passes += other.fused_passes;
        self.kernel_batches += other.kernel_batches;
        self.scratch_bytes_peak = self.scratch_bytes_peak.max(other.scratch_bytes_peak);
        self.tasks_stolen += other.tasks_stolen;
        self.subtree_splits += other.subtree_splits;
        self.bound_tightenings += other.bound_tightenings;
        self.shards_built += other.shards_built;
        self.shard_loads += other.shard_loads;
        self.shard_evictions += other.shard_evictions;
        self.shard_resident_bytes_peak = self
            .shard_resident_bytes_peak
            .max(other.shard_resident_bytes_peak);
        self.cancel_checks += other.cancel_checks;
        self.faults_injected += other.faults_injected;
        self.spill_retries += other.spill_retries;
        self.requests_served += other.requests_served;
        self.requests_shed += other.requests_shed;
        self.cache_hits += other.cache_hits;
        self.cache_coalesced += other.cache_coalesced;
        self.elapsed = self.elapsed.max(other.elapsed);
    }

    /// Copy with the machine-level instrumentation cleared (`elapsed`,
    /// `partition_passes`, `fused_passes`, `kernel_batches`,
    /// `scratch_bytes_peak`, `tasks_stolen`, `subtree_splits`,
    /// `bound_tightenings`), leaving only the *semantic* counters — the
    /// ones that must be bit-identical across execution strategies
    /// (thread counts, work stealing, dominant-task and subtree
    /// splitting, fused vs unfused passes, kernel vs scalar loops) for
    /// the same enumeration.
    ///
    /// Deliberately exhaustive — no `..self.clone()` — so adding a field
    /// to [`MinerStats`] fails to compile until its semantic-vs-work
    /// classification is decided here (and `grm-analyze`'s
    /// `counter-schema-drift` rule checks the same exhaustiveness).
    pub fn semantic(&self) -> MinerStats {
        MinerStats {
            partitions_examined: self.partitions_examined,
            grs_examined: self.grs_examined,
            pruned_by_supp: self.pruned_by_supp,
            pruned_by_score: self.pruned_by_score,
            rejected_trivial: self.rejected_trivial,
            rejected_generality: self.rejected_generality,
            accepted: self.accepted,
            heff_scans: self.heff_scans,
            partition_passes: 0,
            fused_passes: 0,
            kernel_batches: 0,
            scratch_bytes_peak: 0,
            tasks_stolen: 0,
            subtree_splits: 0,
            bound_tightenings: 0,
            shards_built: 0,
            shard_loads: 0,
            shard_evictions: 0,
            shard_resident_bytes_peak: 0,
            cancel_checks: 0,
            faults_injected: 0,
            spill_retries: 0,
            requests_served: 0,
            requests_shed: 0,
            cache_hits: 0,
            cache_coalesced: 0,
            elapsed: Duration::ZERO,
        }
    }
}

impl std::fmt::Display for MinerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partitions={} grs={} pruned_supp={} pruned_score={} trivial={} general={} accepted={} heff_scans={} passes={} fused={} kernel_batches={} scratch_peak={} stolen={} splits={} tightenings={} shards={} shard_loads={} shard_evictions={} shard_peak={} cancel_checks={} faults_injected={} spill_retries={} requests_served={} requests_shed={} cache_hits={} cache_coalesced={} elapsed={:?}",
            self.partitions_examined,
            self.grs_examined,
            self.pruned_by_supp,
            self.pruned_by_score,
            self.rejected_trivial,
            self.rejected_generality,
            self.accepted,
            self.heff_scans,
            self.partition_passes,
            self.fused_passes,
            self.kernel_batches,
            self.scratch_bytes_peak,
            self.tasks_stolen,
            self.subtree_splits,
            self.bound_tightenings,
            self.shards_built,
            self.shard_loads,
            self.shard_evictions,
            self.shard_resident_bytes_peak,
            self.cancel_checks,
            self.faults_injected,
            self.spill_retries,
            self.requests_served,
            self.requests_shed,
            self.cache_hits,
            self.cache_coalesced,
            self.elapsed
        )
    }
}

mod duration_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        d.as_secs_f64().serialize(s)
    }

    /// Stats JSON may come from untrusted files; a negative, NaN,
    /// infinite, or overflowing `elapsed` must surface as a serde error,
    /// not the panic `Duration::from_secs_f64` would raise.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let secs = f64::deserialize(d)?;
        Duration::try_from_secs_f64(secs)
            .map_err(|e| serde::de::Error::custom(format!("invalid elapsed seconds {secs}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_time() {
        let mut a = MinerStats {
            partitions_examined: 5,
            grs_examined: 3,
            elapsed: Duration::from_millis(10),
            ..Default::default()
        };
        let b = MinerStats {
            partitions_examined: 7,
            pruned_by_supp: 2,
            elapsed: Duration::from_millis(25),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.partitions_examined, 12);
        assert_eq!(a.grs_examined, 3);
        assert_eq!(a.pruned_by_supp, 2);
        assert_eq!(a.elapsed, Duration::from_millis(25));
    }

    #[test]
    fn merge_adds_passes_and_maxes_peak() {
        let mut a = MinerStats {
            partition_passes: 10,
            fused_passes: 4,
            kernel_batches: 100,
            scratch_bytes_peak: 1000,
            ..Default::default()
        };
        let b = MinerStats {
            partition_passes: 5,
            fused_passes: 1,
            kernel_batches: 40,
            scratch_bytes_peak: 800,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.partition_passes, 15);
        assert_eq!(a.fused_passes, 5);
        assert_eq!(a.kernel_batches, 140);
        assert_eq!(a.scratch_bytes_peak, 1000, "peak merges with max");
    }

    #[test]
    fn semantic_clears_only_instrumentation() {
        let s = MinerStats {
            grs_examined: 7,
            accepted: 3,
            partition_passes: 99,
            fused_passes: 12,
            kernel_batches: 777,
            scratch_bytes_peak: 4096,
            tasks_stolen: 6,
            subtree_splits: 4,
            bound_tightenings: 11,
            shards_built: 4,
            shard_loads: 9,
            shard_evictions: 5,
            shard_resident_bytes_peak: 1 << 20,
            elapsed: Duration::from_millis(5),
            ..Default::default()
        };
        let sem = s.semantic();
        assert_eq!(sem.grs_examined, 7);
        assert_eq!(sem.accepted, 3);
        assert_eq!(sem.partition_passes, 0);
        assert_eq!(sem.fused_passes, 0);
        assert_eq!(sem.kernel_batches, 0);
        assert_eq!(sem.scratch_bytes_peak, 0);
        assert_eq!(sem.tasks_stolen, 0);
        assert_eq!(sem.subtree_splits, 0);
        assert_eq!(sem.bound_tightenings, 0);
        assert_eq!(sem.shards_built, 0);
        assert_eq!(sem.shard_loads, 0);
        assert_eq!(sem.shard_evictions, 0);
        assert_eq!(sem.shard_resident_bytes_peak, 0);
        assert_eq!(sem.elapsed, Duration::ZERO);
    }

    #[test]
    fn merge_adds_shard_counters_and_maxes_resident_peak() {
        let mut a = MinerStats {
            shards_built: 4,
            shard_loads: 6,
            shard_evictions: 2,
            shard_resident_bytes_peak: 900,
            ..Default::default()
        };
        let b = MinerStats {
            shard_loads: 3,
            shard_evictions: 1,
            shard_resident_bytes_peak: 1200,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.shards_built, 4);
        assert_eq!(a.shard_loads, 9);
        assert_eq!(a.shard_evictions, 3);
        assert_eq!(a.shard_resident_bytes_peak, 1200, "peak merges with max");
    }

    #[test]
    fn merge_adds_engine_work_counters() {
        let mut a = MinerStats {
            tasks_stolen: 2,
            subtree_splits: 1,
            bound_tightenings: 3,
            ..Default::default()
        };
        let b = MinerStats {
            tasks_stolen: 5,
            subtree_splits: 4,
            bound_tightenings: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tasks_stolen, 7);
        assert_eq!(a.subtree_splits, 5);
        assert_eq!(a.bound_tightenings, 4);
    }

    #[test]
    fn merge_adds_fault_tolerance_counters_and_semantic_clears_them() {
        let mut a = MinerStats {
            cancel_checks: 10,
            faults_injected: 1,
            spill_retries: 2,
            ..Default::default()
        };
        let b = MinerStats {
            cancel_checks: 5,
            faults_injected: 2,
            spill_retries: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cancel_checks, 15);
        assert_eq!(a.faults_injected, 3);
        assert_eq!(a.spill_retries, 3);
        let sem = a.semantic();
        assert_eq!(sem.cancel_checks, 0);
        assert_eq!(sem.faults_injected, 0);
        assert_eq!(sem.spill_retries, 0);
    }

    #[test]
    fn merge_adds_service_counters_and_semantic_clears_them() {
        let mut a = MinerStats {
            requests_served: 10,
            requests_shed: 2,
            cache_hits: 4,
            cache_coalesced: 1,
            ..Default::default()
        };
        let b = MinerStats {
            requests_served: 5,
            requests_shed: 1,
            cache_hits: 2,
            cache_coalesced: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.requests_served, 15);
        assert_eq!(a.requests_shed, 3);
        assert_eq!(a.cache_hits, 6);
        assert_eq!(a.cache_coalesced, 4);
        let sem = a.semantic();
        assert_eq!(sem.requests_served, 0);
        assert_eq!(sem.requests_shed, 0);
        assert_eq!(sem.cache_hits, 0);
        assert_eq!(sem.cache_coalesced, 0);
    }

    #[test]
    fn display_includes_counters() {
        let s = MinerStats {
            grs_examined: 42,
            ..Default::default()
        };
        assert!(s.to_string().contains("grs=42"));
    }

    // Corrupt-`elapsed` rejection (negative / NaN / overflow JSON) is
    // covered by the integration regression tests in `tests/serde_io.rs`.

    #[test]
    fn serde_round_trip() {
        let s = MinerStats {
            accepted: 9,
            elapsed: Duration::from_millis(1500),
            ..Default::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: MinerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.accepted, 9);
        assert!((back.elapsed.as_secs_f64() - 1.5).abs() < 1e-9);
    }
}
