//! Instrumentation counters for mining runs.
//!
//! Theorem 4(2) claims GRMiner's work is proportional to the number of GRs
//! examined; these counters make that claim measurable (and drive the
//! Fig. 4 analyses, where the pruning power of `minNhp` and the dynamic
//! top-k threshold is the whole story).

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters collected during one mining run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MinerStats {
    /// Enumeration-tree nodes visited (attribute-set × partition).
    pub partitions_examined: u64,
    /// Candidate GRs examined at RIGHT nodes (r non-empty).
    pub grs_examined: u64,
    /// Partitions discarded by the `minSupp` threshold.
    pub pruned_by_supp: u64,
    /// RIGHT partitions whose subtree was cut by the score threshold
    /// (user `min_score`, or the dynamically upgraded top-k bound).
    pub pruned_by_score: u64,
    /// GRs rejected as trivial (§III-B).
    pub rejected_trivial: u64,
    /// GRs rejected because a more general GR was already accepted
    /// (Def. 5(2)).
    pub rejected_generality: u64,
    /// GRs accepted into the candidate pool (offered to the top-k heap).
    pub accepted: u64,
    /// Homophily-effect snapshot scans performed. One group-by pass fills
    /// every β support of an `l ∧ w` node at once, so this counts at most
    /// one scan per node reaching a non-empty β (on the wide-LHS fallback
    /// path it counts per-β memo misses, as before).
    pub heff_scans: u64,
    /// Wall-clock time of the run.
    #[serde(with = "duration_serde")]
    pub elapsed: Duration,
}

impl MinerStats {
    /// Merge counters from another run segment (used by the parallel
    /// miner; `elapsed` takes the max, counters add).
    pub fn merge(&mut self, other: &MinerStats) {
        self.partitions_examined += other.partitions_examined;
        self.grs_examined += other.grs_examined;
        self.pruned_by_supp += other.pruned_by_supp;
        self.pruned_by_score += other.pruned_by_score;
        self.rejected_trivial += other.rejected_trivial;
        self.rejected_generality += other.rejected_generality;
        self.accepted += other.accepted;
        self.heff_scans += other.heff_scans;
        self.elapsed = self.elapsed.max(other.elapsed);
    }
}

impl std::fmt::Display for MinerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partitions={} grs={} pruned_supp={} pruned_score={} trivial={} general={} accepted={} heff_scans={} elapsed={:?}",
            self.partitions_examined,
            self.grs_examined,
            self.pruned_by_supp,
            self.pruned_by_score,
            self.rejected_trivial,
            self.rejected_generality,
            self.accepted,
            self.heff_scans,
            self.elapsed
        )
    }
}

mod duration_serde {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        d.as_secs_f64().serialize(s)
    }

    /// Stats JSON may come from untrusted files; a negative, NaN,
    /// infinite, or overflowing `elapsed` must surface as a serde error,
    /// not the panic `Duration::from_secs_f64` would raise.
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let secs = f64::deserialize(d)?;
        Duration::try_from_secs_f64(secs)
            .map_err(|e| serde::de::Error::custom(format!("invalid elapsed seconds {secs}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts_and_maxes_time() {
        let mut a = MinerStats {
            partitions_examined: 5,
            grs_examined: 3,
            elapsed: Duration::from_millis(10),
            ..Default::default()
        };
        let b = MinerStats {
            partitions_examined: 7,
            pruned_by_supp: 2,
            elapsed: Duration::from_millis(25),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.partitions_examined, 12);
        assert_eq!(a.grs_examined, 3);
        assert_eq!(a.pruned_by_supp, 2);
        assert_eq!(a.elapsed, Duration::from_millis(25));
    }

    #[test]
    fn display_includes_counters() {
        let s = MinerStats {
            grs_examined: 42,
            ..Default::default()
        };
        assert!(s.to_string().contains("grs=42"));
    }

    // Corrupt-`elapsed` rejection (negative / NaN / overflow JSON) is
    // covered by the integration regression tests in `tests/serde_io.rs`.

    #[test]
    fn serde_round_trip() {
        let s = MinerStats {
            accepted: 9,
            elapsed: Duration::from_millis(1500),
            ..Default::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: MinerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.accepted, 9);
        assert!((back.elapsed.as_secs_f64() - 1.5).abs() < 1e-9);
    }
}
