//! Node and edge descriptors (§III).
//!
//! A *node descriptor* is a set of `(attribute, value)` pairs describing the
//! subset of nodes sharing those values, e.g. `(SEX:F, JOB:IT)`; an *edge
//! descriptor* does the same for edges. Descriptors are the `l`, `w`, `r`
//! parts of a group relationship `l -w-> r`.
//!
//! Internally a descriptor is a vector of pairs kept **sorted by attribute
//! id**, which gives: O(log n) lookup, cheap subset tests, a canonical form
//! (two descriptors are equal iff they describe the same condition), and a
//! deterministic total order used for the rank's final tie-break
//! (Def. 5(3)).

use grm_graph::{AttrValue, NodeAttrId, Schema, NULL};
use serde::{Deserialize, Serialize};

/// A conjunctive condition over node attributes: `(A1:v1, A2:v2, …)`.
///
/// Values are always non-null; "no condition on A" is expressed by A's
/// absence, never by `A:0`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct NodeDescriptor {
    pairs: Vec<(NodeAttrId, AttrValue)>,
}

/// A conjunctive condition over edge attributes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct EdgeDescriptor {
    pairs: Vec<(grm_graph::EdgeAttrId, AttrValue)>,
}

macro_rules! descriptor_impl {
    ($ty:ident, $attr:ty) => {
        impl $ty {
            /// The empty descriptor (matches everything).
            pub fn empty() -> Self {
                Self::default()
            }

            /// Build from pairs; sorts by attribute id. Panics in debug
            /// builds on duplicate attributes or null values.
            pub fn from_pairs(pairs: impl IntoIterator<Item = ($attr, AttrValue)>) -> Self {
                let mut pairs: Vec<_> = pairs.into_iter().collect();
                pairs.sort_unstable_by_key(|&(a, _)| a);
                debug_assert!(
                    pairs.windows(2).all(|w| w[0].0 != w[1].0),
                    "duplicate attribute in descriptor"
                );
                debug_assert!(
                    pairs.iter().all(|&(_, v)| v != NULL),
                    "null value in descriptor"
                );
                Self { pairs }
            }

            /// Number of conditions.
            pub fn len(&self) -> usize {
                self.pairs.len()
            }

            /// Whether the descriptor matches everything.
            pub fn is_empty(&self) -> bool {
                self.pairs.is_empty()
            }

            /// The `(attribute, value)` pairs, sorted by attribute id.
            pub fn pairs(&self) -> &[($attr, AttrValue)] {
                &self.pairs
            }

            /// The value required on `attr`, if constrained.
            pub fn get(&self, attr: $attr) -> Option<AttrValue> {
                self.pairs
                    .binary_search_by_key(&attr, |&(a, _)| a)
                    .ok()
                    .map(|i| self.pairs[i].1)
            }

            /// Whether `attr` is constrained.
            pub fn constrains(&self, attr: $attr) -> bool {
                self.get(attr).is_some()
            }

            /// A copy with one more condition appended. Panics in debug
            /// builds if `attr` is already constrained or `value` is null.
            pub fn with(&self, attr: $attr, value: AttrValue) -> Self {
                debug_assert!(!self.constrains(attr), "attribute already constrained");
                debug_assert_ne!(value, NULL, "null value in descriptor");
                let mut pairs = self.pairs.clone();
                let pos = pairs.partition_point(|&(a, _)| a < attr);
                pairs.insert(pos, (attr, value));
                Self { pairs }
            }

            /// [`Self::with`], drawing the backing buffer from `pool`
            /// instead of allocating (the caller pushes the result back
            /// once done with it). This is what keeps the miner's descend
            /// path — one descriptor extension per examined partition —
            /// allocation-free in steady state.
            pub fn with_pooled(&self, attr: $attr, value: AttrValue, pool: &mut Vec<Self>) -> Self {
                debug_assert!(!self.constrains(attr), "attribute already constrained");
                debug_assert_ne!(value, NULL, "null value in descriptor");
                let mut pairs = match pool.pop() {
                    Some(recycled) => {
                        let mut p = recycled.pairs;
                        p.clear();
                        p
                    }
                    None => Vec::with_capacity(self.pairs.len() + 1),
                };
                let pos = self.pairs.partition_point(|&(a, _)| a < attr);
                pairs.extend_from_slice(&self.pairs[..pos]);
                pairs.push((attr, value));
                pairs.extend_from_slice(&self.pairs[pos..]);
                Self { pairs }
            }

            /// Subset test: every condition of `self` appears in `other`
            /// (same attribute *and* same value). This is the `⊆` of the
            /// generality relation in Def. 5.
            pub fn is_subset_of(&self, other: &Self) -> bool {
                // Both sorted: linear merge scan.
                let mut it = other.pairs.iter();
                'outer: for need in &self.pairs {
                    for have in it.by_ref() {
                        if have.0 == need.0 {
                            if have.1 == need.1 {
                                continue 'outer;
                            }
                            return false;
                        }
                        if have.0 > need.0 {
                            return false;
                        }
                    }
                    return false;
                }
                true
            }

            /// Attribute ids constrained by this descriptor.
            pub fn attrs(&self) -> impl Iterator<Item = $attr> + '_ {
                self.pairs.iter().map(|&(a, _)| a)
            }
        }

        impl FromIterator<($attr, AttrValue)> for $ty {
            fn from_iter<I: IntoIterator<Item = ($attr, AttrValue)>>(iter: I) -> Self {
                Self::from_pairs(iter)
            }
        }
    };
}

descriptor_impl!(NodeDescriptor, NodeAttrId);
descriptor_impl!(EdgeDescriptor, grm_graph::EdgeAttrId);

impl NodeDescriptor {
    /// Render with attribute/value names from `schema`, e.g.
    /// `(SEX:F, EDU:Grad)`.
    pub fn display(&self, schema: &Schema) -> String {
        let inner: Vec<String> = self
            .pairs
            .iter()
            .map(|&(a, v)| {
                let def = schema.node_attr(a);
                format!("{}:{}", def.name(), def.value_name(v))
            })
            .collect();
        format!("({})", inner.join(", "))
    }
}

impl EdgeDescriptor {
    /// Render with attribute/value names from `schema`, e.g.
    /// `[TYPE:dates, STRENGTH:often]`.
    pub fn display(&self, schema: &Schema) -> String {
        let inner: Vec<String> = self
            .pairs
            .iter()
            .map(|&(a, v)| {
                let def = schema.edge_attr(a);
                format!("{}:{}", def.name(), def.value_name(v))
            })
            .collect();
        format!("[{}]", inner.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::SchemaBuilder;

    fn nd(pairs: &[(u8, u16)]) -> NodeDescriptor {
        NodeDescriptor::from_pairs(pairs.iter().map(|&(a, v)| (NodeAttrId(a), v)))
    }

    #[test]
    fn sorted_canonical_form() {
        let d1 = nd(&[(2, 5), (0, 1)]);
        let d2 = nd(&[(0, 1), (2, 5)]);
        assert_eq!(d1, d2);
        assert_eq!(d1.pairs()[0].0, NodeAttrId(0));
    }

    #[test]
    fn get_and_constrains() {
        let d = nd(&[(1, 3), (4, 2)]);
        assert_eq!(d.get(NodeAttrId(1)), Some(3));
        assert_eq!(d.get(NodeAttrId(2)), None);
        assert!(d.constrains(NodeAttrId(4)));
        assert!(!d.constrains(NodeAttrId(0)));
    }

    #[test]
    fn with_inserts_in_order() {
        let d = nd(&[(3, 1)]).with(NodeAttrId(1), 9);
        assert_eq!(d.pairs(), &[(NodeAttrId(1), 9), (NodeAttrId(3), 1)]);
    }

    #[test]
    fn with_pooled_matches_with_and_reuses_buffers() {
        let base = nd(&[(0, 2), (3, 1)]);
        let mut pool: Vec<NodeDescriptor> = Vec::new();
        // Empty pool: allocates, result identical to `with`.
        let a = base.with_pooled(NodeAttrId(1), 9, &mut pool);
        assert_eq!(a, base.with(NodeAttrId(1), 9));
        // Recycled buffer: stale contents must not leak through.
        pool.push(nd(&[(5, 7), (6, 8), (7, 9)]));
        let b = base.with_pooled(NodeAttrId(4), 3, &mut pool);
        assert_eq!(b, base.with(NodeAttrId(4), 3));
        assert!(pool.is_empty(), "the pooled buffer was consumed");
        // Append at the front and at the back both keep sorted order.
        let c = base.with_pooled(NodeAttrId(9), 1, &mut pool);
        assert_eq!(c.pairs().last(), Some(&(NodeAttrId(9), 1)));
    }

    #[test]
    fn subset_semantics() {
        let small = nd(&[(1, 3)]);
        let big = nd(&[(0, 2), (1, 3), (2, 1)]);
        let other_value = nd(&[(1, 4)]);
        assert!(small.is_subset_of(&big));
        assert!(small.is_subset_of(&small));
        assert!(NodeDescriptor::empty().is_subset_of(&small));
        assert!(!big.is_subset_of(&small));
        assert!(
            !other_value.is_subset_of(&big),
            "same attr, different value"
        );
        assert!(!small.is_subset_of(&NodeDescriptor::empty()));
    }

    #[test]
    fn ordering_is_total_and_deterministic() {
        let a = nd(&[(0, 1)]);
        let b = nd(&[(0, 2)]);
        let c = nd(&[(0, 1), (1, 1)]);
        assert!(a < b);
        assert!(a < c, "prefix compares less");
        let mut v = vec![c.clone(), b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, c, b]);
    }

    #[test]
    fn display_uses_names() {
        let schema = SchemaBuilder::new()
            .node_attr_named("SEX", false, ["F", "M"])
            .node_attr_named("EDU", true, ["HS", "College", "Grad"])
            .edge_attr_named("TYPE", ["dates"])
            .build()
            .unwrap();
        let d = nd(&[(0, 2), (1, 3)]);
        assert_eq!(d.display(&schema), "(SEX:M, EDU:Grad)");
        let w = EdgeDescriptor::from_pairs([(grm_graph::EdgeAttrId(0), 1)]);
        assert_eq!(w.display(&schema), "[TYPE:dates]");
        assert_eq!(NodeDescriptor::empty().display(&schema), "()");
    }
}
