//! The baseline miners **BL1** and **BL2** of §VI-D.
//!
//! Both apply the BUC bottom-up iceberg-cube algorithm \[23\] to enumerate
//! *every* attribute-value combination above `minSupp`, then construct GRs,
//! score them and extract the top-k **in a post-processing step**. Neither
//! pushes the `minNhp` threshold or the dynamic top-k bound into the
//! search — that is exactly the handicap the paper's Fig. 4 measures.
//!
//! * **BL1** stores node and edge attributes in a single joined table of
//!   `|E| × (2·#AttrV + #AttrE)` cells ([`grm_graph::SingleTable`]) — the
//!   representation whose size term `|E|·2·#AttrV` §IV-A calls the
//!   bottleneck.
//! * **BL2** works with the node and edge attribute information "separately
//!   stored in three tables": it reads attribute values through the graph's
//!   per-node storage (one indirection per access) and materializes
//!   nothing.

use crate::config::MinerConfig;
use crate::descriptor::{EdgeDescriptor, NodeDescriptor};
use crate::generality::GeneralityIndex;
use crate::gr::{Gr, ScoredGr};
use crate::metrics::MetricInputs;
use crate::miner::MineResult;
use crate::stats::MinerStats;
use crate::tail::Dims;
use crate::topk::TopK;
use grm_graph::sort::{partition_in_place, PartitionArena};
use grm_graph::{AttrValue, SingleTable, SocialGraph, NULL};
use std::collections::HashMap;
use std::time::Instant;

/// Which baseline representation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Single joined table (materialized).
    Bl1,
    /// Three separate arrays (graph storage, indirection per access).
    Bl2,
}

/// A flat pattern over the baseline's dimension space: `(dim, value)`
/// pairs with dims in increasing order.
type Pattern = Vec<(u16, AttrValue)>;

/// Row-keyed view over the dimension space `[L…, W…, R…]`, implemented by
/// both representations.
trait TableView {
    fn key(&self, row: u32, dim: usize) -> AttrValue;
}

struct Bl1View<'a> {
    table: &'a SingleTable,
    dims: &'a DimMap,
}

impl TableView for Bl1View<'_> {
    #[inline]
    fn key(&self, row: u32, dim: usize) -> AttrValue {
        match self.dims.split(dim) {
            DimRole::L(a) => self.table.l_attr(row, a),
            DimRole::W(a) => self.table.w_attr(row, a),
            DimRole::R(a) => self.table.r_attr(row, a),
        }
    }
}

struct Bl2View<'a> {
    graph: &'a SocialGraph,
    dims: &'a DimMap,
}

impl TableView for Bl2View<'_> {
    #[inline]
    fn key(&self, row: u32, dim: usize) -> AttrValue {
        match self.dims.split(dim) {
            DimRole::L(a) => self.graph.src_attr(row, a),
            DimRole::W(a) => self.graph.edge_attr(row, a),
            DimRole::R(a) => self.graph.dst_attr(row, a),
        }
    }
}

enum DimRole {
    L(grm_graph::NodeAttrId),
    W(grm_graph::EdgeAttrId),
    R(grm_graph::NodeAttrId),
}

/// Maps flat dimension indices to L/W/R attributes. Order: all LHS node
/// dims, then edge dims, then RHS node dims — the L→W→R discipline keeps
/// `l ∧ w` sub-patterns of any GR pattern at dims that BUC enumerated
/// earlier, so their supports are in the pattern map.
struct DimMap {
    l: Vec<grm_graph::NodeAttrId>,
    w: Vec<grm_graph::EdgeAttrId>,
    r: Vec<grm_graph::NodeAttrId>,
    buckets: Vec<usize>,
}

impl DimMap {
    fn new(graph: &SocialGraph, dims: &Dims) -> Self {
        let schema = graph.schema();
        // Deterministic attr-id order inside each segment.
        let mut l = dims.l.clone();
        l.sort_unstable();
        let w = dims.w.clone();
        let mut r = dims.r_static.clone();
        r.sort_unstable();
        let mut buckets = Vec::new();
        buckets.extend(l.iter().map(|&a| schema.node_attr(a).bucket_count()));
        buckets.extend(w.iter().map(|&a| schema.edge_attr(a).bucket_count()));
        buckets.extend(r.iter().map(|&a| schema.node_attr(a).bucket_count()));
        DimMap { l, w, r, buckets }
    }

    fn count(&self) -> usize {
        self.l.len() + self.w.len() + self.r.len()
    }

    fn split(&self, dim: usize) -> DimRole {
        if dim < self.l.len() {
            DimRole::L(self.l[dim])
        } else if dim < self.l.len() + self.w.len() {
            DimRole::W(self.w[dim - self.l.len()])
        } else {
            DimRole::R(self.r[dim - self.l.len() - self.w.len()])
        }
    }

    fn r_dim(&self, idx: usize) -> usize {
        self.l.len() + self.w.len() + idx
    }
}

/// Run a baseline miner. The result's `top` matches GRMiner's output for
/// the same configuration (the baselines are *correct*, just slower).
pub fn mine_baseline(graph: &SocialGraph, config: &MinerConfig, kind: BaselineKind) -> MineResult {
    mine_baseline_with_dims(graph, config, &Dims::all(graph.schema()), kind)
}

/// Baseline mining over a restricted dimension set (Fig. 4d).
pub fn mine_baseline_with_dims(
    graph: &SocialGraph,
    config: &MinerConfig,
    dims: &Dims,
    kind: BaselineKind,
) -> MineResult {
    let start = Instant::now();
    let dim_map = DimMap::new(graph, dims);
    let mut stats = MinerStats::default();

    let table; // keep the BL1 join alive for the view's lifetime
    let frequent = match kind {
        BaselineKind::Bl1 => {
            table = SingleTable::build(graph);
            let view = Bl1View {
                table: &table,
                dims: &dim_map,
            };
            buc_all_frequent(graph, &view, &dim_map, config.min_supp, &mut stats)
        }
        BaselineKind::Bl2 => {
            let view = Bl2View {
                graph,
                dims: &dim_map,
            };
            buc_all_frequent(graph, &view, &dim_map, config.min_supp, &mut stats)
        }
    };

    // Post-processing: build GRs out of frequent patterns, score, filter,
    // rank. (The expensive part the paper charges baselines with: the
    // pattern map holds *all* frequent combinations.)
    let edges_total = graph.edge_count() as u64;
    let schema = graph.schema();
    let r_dim_start = dim_map.l.len() + dim_map.w.len();

    let mut candidates: Vec<ScoredGr> = Vec::new();
    for (pattern, &supp) in &frequent {
        // A GR needs a non-empty RHS.
        if pattern.iter().all(|&(d, _)| (d as usize) < r_dim_start) {
            continue;
        }
        // ... and, unless configured otherwise, a non-empty LHS.
        if !config.allow_empty_lhs && !pattern.iter().any(|&(d, _)| (d as usize) < dim_map.l.len())
        {
            continue;
        }
        let (l, w, r) = split_pattern(&dim_map, pattern);
        let lw_pattern: Pattern = pattern
            .iter()
            .copied()
            .filter(|&(d, _)| (d as usize) < r_dim_start)
            .collect();
        let supp_lw = if lw_pattern.is_empty() {
            edges_total
        } else {
            *frequent
                .get(&lw_pattern)
                .expect("l∧w sub-pattern is frequent when the full pattern is")
        };

        let b = crate::beta::beta(schema, &l, &r);
        let heff = if b.is_empty() {
            0
        } else {
            let lbeta = crate::beta::l_beta(&l, b);
            let mut heff_pattern = lw_pattern.clone();
            for (a, v) in &lbeta {
                let idx = dim_map.r.iter().position(|x| x == a).expect("β attr mined");
                heff_pattern.push((dim_map.r_dim(idx) as u16, *v));
            }
            heff_pattern.sort_unstable_by_key(|&(d, _)| d);
            match frequent.get(&heff_pattern) {
                Some(&v) => v,
                // The homophily effect fell below minSupp: count directly.
                None => count_pattern(graph, &dim_map, kind, &heff_pattern),
            }
        };
        let supp_r = if config.metric.needs_r_marginal() {
            let r_pattern: Pattern = pattern
                .iter()
                .copied()
                .filter(|&(d, _)| (d as usize) >= r_dim_start)
                .collect();
            match frequent.get(&r_pattern) {
                Some(&v) => v,
                None => count_pattern(graph, &dim_map, kind, &r_pattern),
            }
        } else {
            0
        };

        let score = config.metric.evaluate(MetricInputs {
            supp,
            supp_lw,
            heff,
            supp_r,
            edges: edges_total,
        });
        if score < config.min_score {
            continue;
        }
        let gr = Gr::new(l, w, r);
        if config.suppress_trivial && gr.is_trivial(schema) {
            stats.rejected_trivial += 1;
            continue;
        }
        candidates.push(ScoredGr {
            gr,
            supp,
            supp_lw,
            heff,
            score,
        });
    }

    // Generality: process small (general) patterns first; a proper
    // generalization always has strictly fewer l∧w conditions.
    candidates.sort_by_key(|c| c.gr.l.len() + c.gr.w.len());
    let mut index = GeneralityIndex::new();
    let mut topk = TopK::new(config.k);
    for cand in candidates {
        if config.generality_filter {
            if index.has_more_general(&cand.gr) {
                stats.rejected_generality += 1;
                continue;
            }
            index.record(&cand.gr);
        }
        stats.accepted += 1;
        topk.offer(cand);
    }

    stats.elapsed = start.elapsed();
    MineResult {
        top: topk.into_sorted(),
        stats,
        edge_count: edges_total,
    }
}

/// BUC [23]: enumerate all frequent `(dim, value)` combinations with
/// support-only pruning, recording each with its support.
fn buc_all_frequent<V: TableView>(
    graph: &SocialGraph,
    view: &V,
    dims: &DimMap,
    min_supp: u64,
    stats: &mut MinerStats,
) -> HashMap<Pattern, u64> {
    let mut out = HashMap::new();
    let mut rows: Vec<u32> = (0..graph.edge_count() as u32).collect();
    if rows.is_empty() {
        return out;
    }
    let mut scratch = PartitionArena::new();
    let mut pattern: Pattern = Vec::new();
    buc_rec(
        view,
        dims,
        &mut rows[..],
        0,
        min_supp,
        &mut pattern,
        &mut scratch,
        &mut out,
        stats,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn buc_rec<V: TableView>(
    view: &V,
    dims: &DimMap,
    data: &mut [u32],
    dim_start: usize,
    min_supp: u64,
    pattern: &mut Pattern,
    scratch: &mut PartitionArena,
    out: &mut HashMap<Pattern, u64>,
    stats: &mut MinerStats,
) {
    for d in dim_start..dims.count() {
        let parts = partition_in_place(data, dims.buckets[d], scratch, |row| view.key(row, d))
            .expect("baseline keys come from the same schema-validated model");
        for part in parts {
            if part.value == NULL {
                continue;
            }
            stats.partitions_examined += 1;
            let supp = part.len() as u64;
            if supp < min_supp {
                stats.pruned_by_supp += 1;
                continue;
            }
            pattern.push((d as u16, part.value));
            out.insert(pattern.clone(), supp);
            stats.grs_examined += 1;
            let sub = &mut data[part.range.clone()];
            buc_rec(
                view,
                dims,
                sub,
                d + 1,
                min_supp,
                pattern,
                scratch,
                out,
                stats,
            );
            pattern.pop();
        }
    }
}

fn split_pattern(
    dims: &DimMap,
    pattern: &Pattern,
) -> (NodeDescriptor, EdgeDescriptor, NodeDescriptor) {
    let mut l = Vec::new();
    let mut w = Vec::new();
    let mut r = Vec::new();
    for &(d, v) in pattern {
        match dims.split(d as usize) {
            DimRole::L(a) => l.push((a, v)),
            DimRole::W(a) => w.push((a, v)),
            DimRole::R(a) => r.push((a, v)),
        }
    }
    (
        NodeDescriptor::from_pairs(l),
        EdgeDescriptor::from_pairs(w),
        NodeDescriptor::from_pairs(r),
    )
}

fn count_pattern(graph: &SocialGraph, dims: &DimMap, kind: BaselineKind, pattern: &Pattern) -> u64 {
    // Direct scan; used only for infrequent helper patterns.
    let matches = |row: u32, view: &dyn Fn(u32, usize) -> AttrValue| {
        pattern.iter().all(|&(d, v)| view(row, d as usize) == v)
    };
    match kind {
        BaselineKind::Bl1 | BaselineKind::Bl2 => {
            let view = Bl2View { graph, dims };
            (0..graph.edge_count() as u32)
                .filter(|&row| matches(row, &|r, d| view.key(r, d)))
                .count() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::GrMiner;
    use grm_graph::{GraphBuilder, SchemaBuilder};

    fn sample(seedish: u32) -> SocialGraph {
        let schema = SchemaBuilder::new()
            .node_attr("A", 3, true)
            .node_attr("B", 2, false)
            .edge_attr("W", 2)
            .build()
            .unwrap();
        let mut b = GraphBuilder::new(schema);
        let mut state = seedish.wrapping_mul(0x9E3779B9).wrapping_add(7);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        let n = 10;
        for _ in 0..n {
            b.add_node(&[(next() % 4) as u16, (next() % 3) as u16])
                .unwrap();
        }
        for _ in 0..40 {
            let s = next() % n;
            let mut t = next() % n;
            if t == s {
                t = (t + 1) % n;
            }
            b.add_edge(s, t, &[(next() % 3) as u16]).unwrap();
        }
        b.build().unwrap()
    }

    fn keys(r: &MineResult) -> Vec<(Gr, u64)> {
        r.top.iter().map(|s| (s.gr.clone(), s.supp)).collect()
    }

    #[test]
    fn baselines_agree_with_grminer() {
        for seed in 0..6u32 {
            let g = sample(seed);
            for cfg in [
                MinerConfig::nhp(1, 0.5, 10),
                MinerConfig::nhp(3, 0.2, 20),
                MinerConfig::conf(2, 0.4, 10),
            ] {
                let cfg = cfg.without_dynamic_topk();
                let miner = GrMiner::new(&g, cfg.clone()).mine();
                let bl1 = mine_baseline(&g, &cfg, BaselineKind::Bl1);
                let bl2 = mine_baseline(&g, &cfg, BaselineKind::Bl2);
                assert_eq!(keys(&miner), keys(&bl1), "BL1 seed {seed} cfg {cfg:?}");
                assert_eq!(keys(&miner), keys(&bl2), "BL2 seed {seed} cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn baseline_does_no_score_pruning() {
        let g = sample(1);
        let cfg = MinerConfig::nhp(1, 0.9, 5);
        let bl = mine_baseline(&g, &cfg, BaselineKind::Bl2);
        assert_eq!(bl.stats.pruned_by_score, 0, "BUC prunes on support only");
    }

    #[test]
    fn baseline_examines_more_than_grminer() {
        let g = sample(2);
        // A high threshold lets GRMiner's nhp pruning bite.
        let cfg = MinerConfig::nhp(1, 0.9, 3);
        let fast = GrMiner::new(&g, cfg.clone()).mine();
        let slow = mine_baseline(&g, &cfg, BaselineKind::Bl2);
        assert!(
            slow.stats.partitions_examined >= fast.stats.partitions_examined,
            "baseline should not examine fewer partitions"
        );
    }

    #[test]
    fn empty_graph() {
        let schema = SchemaBuilder::new()
            .node_attr("A", 2, true)
            .build()
            .unwrap();
        let g = GraphBuilder::new(schema).build().unwrap();
        let r = mine_baseline(&g, &MinerConfig::default(), BaselineKind::Bl1);
        assert!(r.top.is_empty());
    }
}
