//! Fixture schema pin: `orphan` is deliberately missing.

#[test]
fn stats_json_schema_is_pinned() {
    let pinned = ["accepted"];
    assert_eq!(pinned.len(), 1);
}
