//! Fixture: counter schema drift.

#[derive(Clone)]
pub struct MinerStats {
    pub accepted: u64,
    pub orphan: u64,
}

impl MinerStats {
    pub fn merge(&mut self, other: &MinerStats) {
        self.accepted += other.accepted;
    }

    pub fn semantic(&self) -> MinerStats {
        MinerStats {
            accepted: self.accepted,
            ..self.clone()
        }
    }
}

impl std::fmt::Display for MinerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "accepted={}", self.accepted)
    }
}
