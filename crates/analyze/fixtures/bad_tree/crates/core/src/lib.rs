//! Fixture: misc rules and vendor imports.

use widgets::{Gadget, Missing};

pub fn debug_dump(g: &Gadget) {
    println!("{g:?}");
    let p = g as *const Gadget;
    unsafe {
        let _ = core::ptr::read(p);
    }
}

// lint: allow()
pub fn malformed_annotation_above() {}
