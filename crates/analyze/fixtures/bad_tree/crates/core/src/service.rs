//! Fixture: lock-order cycles, contradicted declarations, condvar
//! misuse. Proven by model::ghost; for background see phantom model.

use std::sync::{Condvar, Mutex};

// lock-order: Svc.a < Svc.b
// lock-order: Svc.a < Svc.ghost
// lock-order: Svc.a <

struct Svc {
    a: Mutex<u32>,
    b: Mutex<u32>,
    state: Mutex<u32>,
    // condvar: Svc.gate pairs Svc.state
    gate: Condvar,
    ready: Condvar,
}

impl Svc {
    fn ab(&self) -> u32 {
        let g1 = self.a.lock();
        let g2 = self.b.lock();
        *g1 + *g2
    }

    fn ba(&self) -> u32 {
        let g2 = self.b.lock();
        let g1 = self.a.lock();
        *g1 + *g2
    }

    fn wait_if(&self) {
        let g = self.state.lock();
        if *g == 0 {
            let _g = self.gate.wait(g);
        }
    }

    fn wait_wrong_guard(&self) {
        loop {
            let g = self.a.lock();
            let _g = self.gate.wait(g);
        }
    }

    fn poke(&self) {
        self.ready.notify_one();
        self.gate.notify_all();
    }
}
