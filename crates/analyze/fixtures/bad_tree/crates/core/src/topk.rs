//! Fixture: atomic ordering audit.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(cell: &AtomicU64, v: u64) {
    cell.store(v, Ordering::Relaxed);
    let _ = cell.load(Ordering::Acquire);
    // ordering: Release pairs with the Acquire load above in readers.
    cell.store(v + 1, Ordering::Release);
}
