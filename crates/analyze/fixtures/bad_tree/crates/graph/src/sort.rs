//! Fixture: allocations in an arena module.

pub fn arena_path() -> Vec<u32> {
    let grown: Vec<u32> = (0..4).collect();
    let mut scratch = Vec::new();
    scratch.extend_from_slice(&grown);
    // lint: allow(alloc-in-arena) — fixture-sanctioned construction site
    let once = vec![1u32];
    scratch.extend(once);
    scratch
}
