//! Fixture: panics in a hot-path file.

pub fn hot(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("two");
    // lint: allow(panic-in-hot-path) — fixture-sanctioned invariant
    let third = v.get(2).unwrap();
    first + second + third
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_fine() {
        assert_eq!(super::hot(&[1, 2, 3]), "6".parse::<u32>().unwrap());
    }
}
