//! Fixture: truncating index arithmetic in the shard scratch.

pub fn pack(nodes: &[u64], x: usize) -> u32 {
    let id = nodes.len() as u32;
    let lo = x as u32; // cast:
    // cast: x < the u32 edge cap, checked by the caller
    let hi = x as u32;
    id + lo + hi
}
