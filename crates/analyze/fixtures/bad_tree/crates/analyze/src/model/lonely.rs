//! Fixture model: declared but not reachable from full_suite().

pub fn suite() {}
