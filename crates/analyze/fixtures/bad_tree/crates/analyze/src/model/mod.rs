//! Fixture model registry: one module exists on disk but is never
//! declared, another is declared but never wired into the suite.

mod good;
mod lonely;

pub fn full_suite() {
    good::suite();
}
