//! Fixture model: declared and wired.

pub fn suite() {}
