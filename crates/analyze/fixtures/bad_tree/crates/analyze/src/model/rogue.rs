//! Fixture model: present on disk, never declared.

pub fn suite() {}
