//! Fixture vendor stub.

#[derive(Debug)]
pub struct Gadget {
    pub size: u32,
}

pub fn orphan_helper() -> u32 {
    7
}
