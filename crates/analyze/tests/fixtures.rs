//! The lint driver against a seeded fixture tree: every rule must fire
//! at exactly the seeded (rule, path, line) — no more, no less. Message
//! wording is free to evolve; locations and rule ids are the contract.

use grm_analyze::{rules, walk};
use std::path::Path;

fn fixture_diags(name: &str) -> Vec<(String, String, usize)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let set = walk::collect(&root).expect("fixture tree is readable");
    rules::run_all(&set)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.path, d.line))
        .collect()
}

#[test]
fn bad_tree_produces_exactly_the_seeded_diagnostics() {
    let got = fixture_diags("bad_tree");
    let want: Vec<(String, String, usize)> = [
        (
            "proof-model-linkage",
            "crates/analyze/src/model/lonely.rs",
            0,
        ),
        ("proof-model-linkage", "crates/analyze/src/model/mod.rs", 0),
        (
            "proof-model-linkage",
            "crates/analyze/src/model/rogue.rs",
            0,
        ),
        ("vendor-api-surface", "crates/core/src/lib.rs", 3),
        ("no-debug-print", "crates/core/src/lib.rs", 6),
        ("unsafe-without-safety", "crates/core/src/lib.rs", 8),
        ("malformed-allow", "crates/core/src/lib.rs", 13),
        ("proof-model-linkage", "crates/core/src/service.rs", 2),
        ("proof-model-linkage", "crates/core/src/service.rs", 2),
        ("lock-order-cycle", "crates/core/src/service.rs", 7),
        ("lock-order-cycle", "crates/core/src/service.rs", 8),
        ("condvar-discipline", "crates/core/src/service.rs", 16),
        ("lock-order-cycle", "crates/core/src/service.rs", 22),
        ("lock-order-cycle", "crates/core/src/service.rs", 28),
        ("condvar-discipline", "crates/core/src/service.rs", 35),
        ("condvar-discipline", "crates/core/src/service.rs", 42),
        ("condvar-discipline", "crates/core/src/service.rs", 48),
        ("counter-schema-drift", "crates/core/src/stats.rs", 6),
        ("counter-schema-drift", "crates/core/src/stats.rs", 6),
        ("counter-schema-drift", "crates/core/src/stats.rs", 6),
        ("counter-schema-drift", "crates/core/src/stats.rs", 6),
        ("counter-schema-drift", "crates/core/src/stats.rs", 14),
        ("atomic-ordering-audit", "crates/core/src/topk.rs", 6),
        ("atomic-ordering-audit", "crates/core/src/topk.rs", 7),
        ("panic-in-hot-path", "crates/graph/src/kernel.rs", 4),
        ("panic-in-hot-path", "crates/graph/src/kernel.rs", 5),
        ("cast-truncation-audit", "crates/graph/src/shard.rs", 4),
        ("cast-truncation-audit", "crates/graph/src/shard.rs", 5),
        ("alloc-in-arena", "crates/graph/src/sort.rs", 4),
        ("alloc-in-arena", "crates/graph/src/sort.rs", 5),
        ("vendor-api-surface", "vendor/widgets/src/lib.rs", 8),
    ]
    .into_iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), l))
    .collect();
    assert_eq!(got, want);
}

#[test]
fn every_rule_id_fires_in_the_fixture() {
    let fired: Vec<String> = fixture_diags("bad_tree")
        .into_iter()
        .map(|(rule, _, _)| rule)
        .collect();
    for (id, _) in rules::RULES {
        assert!(
            fired.iter().any(|r| r == id),
            "rule `{id}` never fires in the fixture — its teeth are untested"
        );
    }
}

#[test]
fn the_four_drift_surfaces_are_each_reported() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad_tree");
    let set = walk::collect(&root).expect("fixture tree is readable");
    let messages: Vec<String> = rules::run_all(&set)
        .into_iter()
        .filter(|d| d.rule == "counter-schema-drift")
        .map(|d| d.message)
        .collect();
    for surface in ["merge()", "semantic()", "Display", "--stats-json"] {
        assert!(
            messages.iter().any(|m| m.contains(surface)),
            "no drift diagnostic names the {surface} surface"
        );
    }
}
