//! The `check --json` machine-readable surface: the schema is pinned
//! byte-for-byte (CI parses it, dashboards archive it — silent drift is
//! a breaking change), and the CLI flag is exercised end-to-end against
//! the seeded fixture tree.

use grm_analyze::diag::{self, Diagnostic};
use std::path::Path;
use std::process::Command;

#[test]
fn json_schema_is_pinned_exactly() {
    let diags = vec![
        Diagnostic::new(
            "no-debug-print",
            "crates/core/src/lib.rs",
            6,
            "a \"quoted\" message\nwith a newline",
        ),
        Diagnostic::new("vendor-api-surface", "vendor/w/src/lib.rs", 0, "tab\there"),
    ];
    let got = diag::render_json(80, 11, &diags);
    assert_eq!(
        got,
        "{\"version\":1,\
         \"summary\":{\"files\":80,\"rules\":11,\"diagnostics\":2},\
         \"diagnostics\":[\
         {\"rule\":\"no-debug-print\",\"path\":\"crates/core/src/lib.rs\",\"line\":6,\
         \"message\":\"a \\\"quoted\\\" message\\nwith a newline\"},\
         {\"rule\":\"vendor-api-surface\",\"path\":\"vendor/w/src/lib.rs\",\"line\":0,\
         \"message\":\"tab\\there\"}\
         ]}"
    );
}

#[test]
fn empty_run_renders_an_empty_diagnostics_array() {
    assert_eq!(
        diag::render_json(3, 11, &[]),
        "{\"version\":1,\"summary\":{\"files\":3,\"rules\":11,\"diagnostics\":0},\"diagnostics\":[]}"
    );
}

#[test]
fn check_json_flag_emits_the_schema_and_the_failure_exit() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad_tree");
    let out = Command::new(env!("CARGO_BIN_EXE_grm-analyze"))
        .args(["check", "--json", "--root"])
        .arg(&root)
        .output()
        .expect("the grm-analyze binary runs");
    assert_eq!(out.status.code(), Some(1), "a dirty tree must exit 1");
    let text = String::from_utf8(out.stdout).expect("JSON output is UTF-8");
    assert!(
        text.starts_with("{\"version\":1,\"summary\":{\"files\":"),
        "output must lead with the pinned version/summary header: {text}"
    );
    assert!(
        text.contains(
            "{\"rule\":\"proof-model-linkage\",\
             \"path\":\"crates/analyze/src/model/lonely.rs\",\"line\":0,"
        ),
        "diagnostics must carry rule/path/line fields: {text}"
    );
    assert!(
        text.trim_end().ends_with("]}"),
        "output must close the diagnostics array"
    );
}
