//! The real workspace must lint clean: `cargo test` fails the moment a
//! hot-path panic, an unjustified ordering, a drifting counter, an
//! arena allocation, or a vendor-surface mismatch lands — the same gate
//! `grm-analyze check` enforces in CI.

use grm_analyze::{rules, walk};
use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = walk::find_root(here).expect("the analyze crate lives inside the workspace");
    let set = walk::collect(&root).expect("workspace sources are readable");
    assert!(
        !set.files.is_empty(),
        "workspace discovery found no sources under {}",
        root.display()
    );
    let diags = rules::run_all(&set);
    assert!(
        diags.is_empty(),
        "the tree must lint clean; fix or annotate:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
