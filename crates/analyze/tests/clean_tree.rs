//! The real workspace must lint clean: `cargo test` fails the moment a
//! hot-path panic, an unjustified ordering, a drifting counter, an
//! arena allocation, or a vendor-surface mismatch lands — the same gate
//! `grm-analyze check` enforces in CI.

use grm_analyze::{rules, walk};
use std::path::Path;

#[test]
fn the_workspace_lints_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = walk::find_root(here).expect("the analyze crate lives inside the workspace");
    let set = walk::collect(&root).expect("workspace sources are readable");
    assert!(
        !set.files.is_empty(),
        "workspace discovery found no sources under {}",
        root.display()
    );
    let diags = rules::run_all(&set);
    assert!(
        diags.is_empty(),
        "the tree must lint clean; fix or annotate:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The flow-aware rules (PR 10) individually report zero findings on
/// the real tree — every lock site, wait/notify, narrowing cast, and
/// model citation is either clean or carries its proof annotation.
#[test]
fn the_flow_rules_run_and_find_nothing_in_the_real_tree() {
    assert_eq!(rules::RULES.len(), 11, "the rule roster is pinned");
    let flow_rules = [
        "lock-order-cycle",
        "condvar-discipline",
        "cast-truncation-audit",
        "proof-model-linkage",
    ];
    for r in flow_rules {
        assert!(
            rules::RULES.iter().any(|(id, _)| *id == r),
            "rule `{r}` is missing from the roster"
        );
    }
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = walk::find_root(here).expect("the analyze crate lives inside the workspace");
    let set = walk::collect(&root).expect("workspace sources are readable");
    let diags = rules::run_all(&set);
    for r in flow_rules {
        let hits: Vec<String> = diags
            .iter()
            .filter(|d| d.rule == r)
            .map(ToString::to_string)
            .collect();
        assert!(
            hits.is_empty(),
            "rule `{r}` must be clean on the real tree:\n{}",
            hits.join("\n")
        );
    }
}
