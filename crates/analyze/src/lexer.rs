//! A minimal comment/string-aware scanner for Rust source.
//!
//! The lint rules need to know, for every source line, (a) what the
//! *code* on that line is with comments and literal bodies blanked out
//! (so `".unwrap()"` inside a string or a doc comment never trips a
//! rule), and (b) what the *comment text* on that line is (so allow
//! annotations, `// ordering:` justifications and `// SAFETY:` proofs
//! can be found), and (c) whether the line sits inside a `#[cfg(test)]`
//! region (test code is exempt from the hot-path rules).
//!
//! This is a hand-rolled lexer rather than a real parser (`syn` is off
//! the table — the workspace builds offline against vendored stubs
//! only), so it handles exactly the token forms that decide
//! code-vs-not-code: line comments, nesting block comments, string /
//! raw-string / byte-string / char literals with escapes, and the
//! char-literal vs lifetime ambiguity. Everything else passes through
//! untouched. Both views preserve the line structure of the input, so
//! byte offsets within a line map 1:1 and diagnostics can cite exact
//! lines.

/// One scanned source file: three line-parallel views of the input.
#[derive(Debug)]
pub struct ScannedFile {
    /// Per line: the code with comments and literal interiors replaced
    /// by spaces (delimiters like `"` are kept — they are code).
    pub code: Vec<String>,
    /// Per line: only the comment bytes (everything else a space).
    pub comments: Vec<String>,
    /// Per line: whether the line is inside a `#[cfg(test)]` item or a
    /// `#[test]` function body.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum Class {
    /// Plain code (including literal delimiters).
    Code,
    /// Interior of a string/char literal.
    Lit,
    /// Comment bytes, marker included.
    Comment,
}

#[derive(Clone, Copy)]
enum St {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Classify every char of `src`, then fold into the line-parallel views.
pub fn scan(src: &str) -> ScannedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut class = vec![Class::Code; chars.len()];
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                let prev = if i == 0 { None } else { Some(chars[i - 1]) };
                match c {
                    '/' if next == Some('/') => {
                        st = St::LineComment;
                        class[i] = Class::Comment;
                    }
                    '/' if next == Some('*') => {
                        st = St::BlockComment(1);
                        class[i] = Class::Comment;
                        class[i + 1] = Class::Comment;
                        i += 1;
                    }
                    '"' => st = St::Str,
                    'r' | 'b' if !prev.is_some_and(is_ident) => {
                        // Possible raw/byte literal prefix: b"..",
                        // br#".."#, r".." , r#".."#, b'.'.
                        let mut j = i + 1;
                        if c == 'b' && chars.get(j) == Some(&'\'') {
                            st = St::Char;
                            i = j;
                        } else {
                            if c == 'b' && chars.get(j) == Some(&'r') {
                                j += 1;
                            }
                            let mut hashes = 0u32;
                            while chars.get(j) == Some(&'#') {
                                hashes += 1;
                                j += 1;
                            }
                            if chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                                st = St::RawStr(hashes);
                                i = j;
                            }
                        }
                    }
                    // Lifetime (`'a`) or char literal (`'a'`)?  A char
                    // literal always closes with `'` right after one
                    // (possibly escaped) char; anything else is a
                    // lifetime and stays Code.
                    '\'' if next == Some('\\')
                        || (next.is_some() && chars.get(i + 2) == Some(&'\'')) =>
                    {
                        st = St::Char;
                    }
                    _ => {}
                }
            }
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                } else {
                    class[i] = Class::Comment;
                }
            }
            St::BlockComment(depth) => {
                class[i] = Class::Comment;
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    class[i + 1] = Class::Comment;
                    st = St::BlockComment(depth + 1);
                    i += 1;
                } else if c == '*' && next == Some('/') {
                    class[i + 1] = Class::Comment;
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    class[i] = Class::Lit;
                    if i + 1 < chars.len() {
                        class[i + 1] = Class::Lit;
                    }
                    i += 1;
                } else if c == '"' {
                    st = St::Code; // closing delimiter stays Code
                } else {
                    class[i] = Class::Lit;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#')) {
                    for k in 1..=hashes as usize {
                        class[i + k] = Class::Code;
                    }
                    i += hashes as usize;
                    st = St::Code;
                } else {
                    class[i] = Class::Lit;
                }
            }
            St::Char => {
                if c == '\\' {
                    class[i] = Class::Lit;
                    if i + 1 < chars.len() {
                        class[i + 1] = Class::Lit;
                    }
                    i += 1;
                } else if c == '\'' {
                    st = St::Code;
                } else {
                    class[i] = Class::Lit;
                }
            }
        }
        i += 1;
    }

    // Fold the classified stream into line-parallel views. Newlines
    // delimit lines in every state (Rust line comments end at newline;
    // multi-line strings/blocks simply continue on the next line).
    let mut code = vec![String::new()];
    let mut comments = vec![String::new()];
    for (idx, &c) in chars.iter().enumerate() {
        if c == '\n' {
            code.push(String::new());
            comments.push(String::new());
            continue;
        }
        let (code_ch, com_ch) = match class[idx] {
            // Non-ASCII can only appear in code as part of an exotic
            // identifier, which no rule pattern contains; squashing it
            // keeps the code view byte-indexable (chars == bytes).
            Class::Code => (if c.is_ascii() { c } else { '.' }, ' '),
            Class::Lit => (' ', ' '),
            Class::Comment => (' ', c),
        };
        code.last_mut().expect("always one line").push(code_ch);
        comments.last_mut().expect("always one line").push(com_ch);
    }

    let in_test = mark_test_regions(&code);
    ScannedFile {
        code,
        comments,
        in_test,
    }
}

/// Mark the lines covered by `#[cfg(test)]` items and `#[test]`
/// functions: from the attribute line through the matching close brace
/// of the next `{`-delimited body (an attribute followed by `;` before
/// any `{` — e.g. `mod tests;` — covers nothing here; out-of-line test
/// modules live under `tests/`, which the driver never scans with the
/// hot-path rules anyway).
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let joined = code.join("\n");
    let bytes: Vec<char> = joined.chars().collect();
    let mut in_test = vec![false; code.len()];
    for pat in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(pos) = joined[from..].find(pat) {
            let start = from + pos;
            from = start + pat.len();
            // Scan forward for the body open brace.
            let mut j = joined[start..]
                .char_indices()
                .map(|(o, _)| start + o)
                .skip(pat.len());
            let mut open = None;
            for k in j.by_ref() {
                match bytes[k] {
                    '{' => {
                        open = Some(k);
                        break;
                    }
                    ';' => break,
                    _ => {}
                }
            }
            if open.is_none() {
                continue;
            }
            let mut depth = 1usize;
            let mut close = bytes.len();
            for k in j {
                match bytes[k] {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            close = k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let first_line = joined[..start].matches('\n').count();
            let last_line = joined[..close.min(joined.len())].matches('\n').count();
            for line in first_line..=last_line.min(in_test.len() - 1) {
                in_test[line] = true;
            }
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_from_code() {
        let s = scan("let x = 1; // .unwrap() here\n");
        assert!(!s.code[0].contains(".unwrap()"));
        assert!(s.comments[0].contains(".unwrap()"));
    }

    #[test]
    fn string_bodies_are_blanked_but_delimiters_kept() {
        let s = scan("let x = \".unwrap() { }\";\n");
        assert!(!s.code[0].contains(".unwrap()"));
        assert!(!s.code[0].contains('{'), "literal braces must vanish");
        assert!(s.code[0].contains('"'));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let s = scan(r##"let a = r#"panic!("x")"#; let b = "\"panic!(";"##);
        assert!(!s.code[0].contains("panic!"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let s = scan("fn f<'a>(x: &'a str) { let c = '{'; }");
        // The lifetime survives as code; the char literal brace doesn't.
        assert!(s.code[0].contains("'a"));
        assert_eq!(s.code[0].matches('{').count(), 1, "only the body brace");
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("a /* x /* y */ .unwrap() */ b\n");
        assert!(!s.code[0].contains(".unwrap()"));
        assert!(s.code[0].contains('a') && s.code[0].contains('b'));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = scan(src);
        // (a trailing newline yields one final empty line in the views)
        assert_eq!(s.in_test, vec![false, true, true, true, true, false, false]);
    }

    #[test]
    fn byte_strings_are_literals() {
        let s = scan("let x = b\"panic!(\"; let y = b'{';\n");
        assert!(!s.code[0].contains("panic!"));
        assert!(!s.code[0].contains('{'));
    }

    #[test]
    fn line_structure_is_preserved() {
        let src = "a\n\"multi\nline\"\nb";
        let s = scan(src);
        assert_eq!(s.code.len(), 4);
        assert_eq!(s.code[0], "a");
        assert_eq!(s.code[3], "b");
    }
}
