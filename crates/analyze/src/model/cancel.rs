//! Model of the cooperative cancellation/drain protocol
//! (crates/core/src/parallel.rs, crates/core/src/sharded.rs): a shared
//! cancel flag is set once (by a deadline, a caller, or a panicking
//! sibling), every worker re-checks it at the top of its task loop, a
//! worker that observes it *drains* — publishes its locally accumulated
//! counters into the shared results exactly once — and then exits; a
//! worker that panics mid-stream publishes its completed-task counters
//! on the unwind path before cancelling its siblings.
//!
//! The model's atomic actions mirror the code's: the flag check and the
//! task take are *separate* steps (the queue pop happens after the
//! check, so one stale task start per worker is admissible — that is
//! the cooperative part), task execution bumps a worker-local counter
//! (the code's per-worker `MinerStats`), and the drain is one step (the
//! code's single `results.lock().append`). A scripted panic replaces
//! one worker's task completion, exactly where `catch_unwind` sits.
//!
//! Checked invariants:
//! 1. **Publish-exactly-once** (no double-drain): no worker's counters
//!    are ever merged twice. The [`Variant::DoubleDrain`] teeth-check
//!    publishes on the cancel path and then falls back into the loop.
//! 2. **Sibling-stop eventually observed**: after the flag is set, a
//!    worker starts at most one further task (the one racing its last
//!    clear-flag check) — it can never take two.
//! 3. **No lost work on cancel** (terminal): every worker published
//!    exactly once — on the cancel path, the normal empty-queue path,
//!    *or* the panic unwind path — and the merged total equals the
//!    total work executed. The [`Variant::ExitWithoutDrain`] and
//!    [`Variant::PanicSkipsPublish`] teeth-checks each lose counters.
//! 4. **Termination**: cancellation can strand queued tasks by design,
//!    but never a worker — every interleaving reaches all-exited.

use super::sched::{self, Model};
use super::Report;

/// Which protocol to check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// The shipped drain-exactly-once protocol.
    Correct,
    /// A worker that observes the cancel flag exits without publishing
    /// its local counters — partial stats silently lose work.
    ExitWithoutDrain,
    /// A worker that observes the cancel flag publishes and then falls
    /// back into the task loop — and publishes again on the next
    /// observation.
    DoubleDrain,
    /// The panic path cancels the siblings but skips the unwind-side
    /// publish — the panicking worker's completed tasks vanish.
    PanicSkipsPublish,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Pc {
    /// Loop top: about to load the cancel flag.
    Check,
    /// Flag observed clear: about to pop the shared queue (the flag may
    /// be set between these two steps — the admissible stale start).
    Take,
    /// Executing one task.
    Exec,
    /// Exited.
    Done,
}

/// Model state.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CancelModel {
    variant: Variant,
    /// Tasks remaining in the shared queue.
    queue: u8,
    /// The shared cancel flag (set once, never cleared).
    flag: bool,
    /// The one-shot canceller thread (deadline/caller) still to fire.
    canceller_armed: bool,
    pc: Vec<Pc>,
    /// Per-worker completed-task counters (the local `MinerStats`).
    executed: Vec<u8>,
    /// Per-worker publish events (must end at exactly 1).
    published: Vec<u8>,
    /// Sum of all drained counters (the shared merged stats).
    merged: u8,
    /// Per-worker tasks started after the flag was set.
    stale_starts: Vec<u8>,
    /// Scripted panic: worker `.0` panics in place of completing a task
    /// once it has `.1` completions behind it.
    panic_at: Option<(usize, u8)>,
}

impl CancelModel {
    /// `workers` workers over a queue of `tasks`; `canceller` arms the
    /// external one-shot cancel, `panic_at` scripts an unwinding worker.
    pub fn new(
        variant: Variant,
        workers: usize,
        tasks: u8,
        canceller: bool,
        panic_at: Option<(usize, u8)>,
    ) -> Self {
        CancelModel {
            variant,
            queue: tasks,
            flag: false,
            canceller_armed: canceller,
            pc: vec![Pc::Check; workers],
            executed: vec![0; workers],
            published: vec![0; workers],
            merged: 0,
            stale_starts: vec![0; workers],
            panic_at,
        }
    }

    fn workers(&self) -> usize {
        self.pc.len()
    }

    fn publish(&mut self, tid: usize) {
        self.merged += self.executed[tid];
        self.published[tid] += 1;
    }
}

impl Model for CancelModel {
    fn threads(&self) -> usize {
        // Workers plus the one-shot canceller.
        self.workers() + 1
    }

    fn runnable(&self, tid: usize) -> bool {
        if tid == self.workers() {
            self.canceller_armed
        } else {
            self.pc[tid] != Pc::Done
        }
    }

    fn step(&self, tid: usize) -> Vec<(String, Self)> {
        let mut s = self.clone();
        if tid == self.workers() {
            s.flag = true;
            s.canceller_armed = false;
            return vec![("canceller:set flag".to_string(), s)];
        }
        match self.pc[tid] {
            Pc::Done => Vec::new(),
            Pc::Check => {
                if self.flag {
                    let label;
                    match self.variant {
                        Variant::ExitWithoutDrain => {
                            // Broken: exit, counters never merged.
                            s.pc[tid] = Pc::Done;
                            label = format!("w{tid}:cancelled → exit WITHOUT drain");
                        }
                        Variant::DoubleDrain => {
                            // Broken: publish, then fall back into the
                            // loop — the next check publishes again.
                            s.publish(tid);
                            s.pc[tid] = Pc::Check;
                            label = format!("w{tid}:cancelled → drain, loop again");
                        }
                        Variant::Correct | Variant::PanicSkipsPublish => {
                            s.publish(tid);
                            s.pc[tid] = Pc::Done;
                            label = format!("w{tid}:cancelled → drain once, exit");
                        }
                    }
                    vec![(label, s)]
                } else {
                    s.pc[tid] = Pc::Take;
                    vec![(format!("w{tid}:flag clear"), s)]
                }
            }
            Pc::Take => {
                if self.queue > 0 {
                    s.queue -= 1;
                    if self.flag {
                        // The admissible race: the flag was set after
                        // this worker's clear-flag check.
                        s.stale_starts[tid] += 1;
                    }
                    s.pc[tid] = Pc::Exec;
                    vec![(format!("w{tid}:take task"), s)]
                } else {
                    // Queue exhausted: the normal exit also drains.
                    s.publish(tid);
                    s.pc[tid] = Pc::Done;
                    vec![(format!("w{tid}:queue empty → drain, exit"), s)]
                }
            }
            Pc::Exec => {
                if self.panic_at == Some((tid, self.executed[tid])) {
                    // The task body unwinds: `catch_unwind` cancels the
                    // siblings and (correctly) still drains the
                    // counters of the tasks completed before it.
                    s.flag = true;
                    if self.variant != Variant::PanicSkipsPublish {
                        s.publish(tid);
                    }
                    s.pc[tid] = Pc::Done;
                    let suffix = if self.variant == Variant::PanicSkipsPublish {
                        "exit WITHOUT drain"
                    } else {
                        "drain partials, exit"
                    };
                    vec![(format!("w{tid}:panic → cancel siblings, {suffix}"), s)]
                } else {
                    s.executed[tid] += 1;
                    s.pc[tid] = Pc::Check;
                    vec![(format!("w{tid}:complete task"), s)]
                }
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        for tid in 0..self.workers() {
            if self.published[tid] > 1 {
                return Err(format!(
                    "double drain: w{tid} published its counters {} times",
                    self.published[tid]
                ));
            }
            if self.stale_starts[tid] > 1 {
                return Err(format!(
                    "sibling-stop not observed: w{tid} started {} tasks after cancellation",
                    self.stale_starts[tid]
                ));
            }
        }
        if self.variant == Variant::Correct {
            // Merged stats always equal the drained workers' work.
            let drained: u8 = (0..self.workers())
                .filter(|&t| self.published[t] > 0)
                .map(|t| self.executed[t])
                .sum();
            if self.merged != drained {
                return Err(format!(
                    "merge drift: merged={} but drained workers executed {drained}",
                    self.merged
                ));
            }
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.pc.iter().any(|p| *p != Pc::Done) {
            return Err("terminal state with a non-exited worker".to_string());
        }
        for tid in 0..self.workers() {
            if self.published[tid] != 1 {
                return Err(format!(
                    "lost work: w{tid} exited having published {} times (want exactly 1)",
                    self.published[tid]
                ));
            }
        }
        let total: u8 = self.executed.iter().sum();
        if self.merged != total {
            return Err(format!(
                "lost work: merged {} of {} executed tasks",
                self.merged, total
            ));
        }
        Ok(())
    }
}

/// The verification runs: the shipped protocol proved with an external
/// canceller and with a panicking worker (plus, when `deep`, a larger
/// configuration), and all three broken variants refuted.
pub fn suite(deep: bool) -> Vec<Report> {
    let mut reports = vec![
        Report {
            name: "cancel: correct, 2 workers, 3 tasks, cancel at any point",
            expect_flaw: false,
            outcome: sched::explore(
                CancelModel::new(Variant::Correct, 2, 3, true, None),
                2_000_000,
            ),
        },
        Report {
            name: "cancel: correct, worker panic drains its partial counters",
            expect_flaw: false,
            outcome: sched::explore(
                CancelModel::new(Variant::Correct, 2, 3, false, Some((0, 1))),
                2_000_000,
            ),
        },
        Report {
            name: "cancel: exit-without-drain is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                CancelModel::new(Variant::ExitWithoutDrain, 2, 3, true, None),
                2_000_000,
            ),
        },
        Report {
            name: "cancel: double-drain is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                CancelModel::new(Variant::DoubleDrain, 2, 3, true, None),
                2_000_000,
            ),
        },
        Report {
            name: "cancel: panic-skips-publish is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                CancelModel::new(Variant::PanicSkipsPublish, 2, 3, true, Some((0, 1))),
                2_000_000,
            ),
        },
    ];
    if deep {
        reports.push(Report {
            name: "cancel: correct, 3 workers, 4 tasks, cancel + panic",
            expect_flaw: false,
            outcome: sched::explore(
                CancelModel::new(Variant::Correct, 3, 4, true, Some((1, 1))),
                8_000_000,
            ),
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::super::sched::Outcome;
    use super::*;

    #[test]
    fn fast_suite_holds() {
        for r in suite(false) {
            assert!(
                r.ok(),
                "{}: unexpected outcome {:?}",
                r.name,
                match r.outcome {
                    Outcome::Proved { states } => format!("proved ({states})"),
                    Outcome::Flaw(ref ce) => format!("flaw: {} via {:?}", ce.reason, ce.trace),
                    Outcome::Truncated { states } => format!("truncated ({states})"),
                }
            );
        }
    }

    #[cfg(feature = "model-check")]
    #[test]
    fn deep_suite_holds() {
        for r in suite(true) {
            assert!(r.ok(), "{}", r.name);
        }
    }

    #[test]
    fn lost_drain_counterexample_names_the_bug() {
        let out = sched::explore(
            CancelModel::new(Variant::ExitWithoutDrain, 2, 3, true, None),
            2_000_000,
        );
        match out {
            Outcome::Flaw(ce) => assert!(ce.reason.contains("lost work"), "{}", ce.reason),
            other => panic!("expected lost-work flaw, got {other:?}"),
        }
    }

    #[test]
    fn double_drain_counterexample_names_the_bug() {
        let out = sched::explore(
            CancelModel::new(Variant::DoubleDrain, 2, 3, true, None),
            2_000_000,
        );
        match out {
            Outcome::Flaw(ce) => assert!(ce.reason.contains("double drain"), "{}", ce.reason),
            other => panic!("expected double-drain flaw, got {other:?}"),
        }
    }
}
