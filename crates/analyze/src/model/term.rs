//! Model of the work-stealing pool's termination protocol
//! (crates/core/src/parallel.rs): a `pending` counter registers every
//! task *before* it becomes stealable, decrements only *after* the task
//! (and all its spawn registrations) completed, and an idle worker
//! exits only when a full empty sweep of every queue is followed by a
//! zero read of `pending`.
//!
//! The model's atomic actions mirror the code's: each queue probe of
//! the idle sweep is its own step (the sweep is *not* atomic — a task
//! may land in an already-probed queue mid-sweep, which is exactly
//! where naive protocols lose work), each spawn is two steps
//! (`fetch_add`, then push), and completion is one (`fetch_sub`).
//! Tasks are shaped `Task(n)`: executing it spawns `n` children
//! `Task(n-1)`, so one root task exercises nested spawning while
//! stolen.
//!
//! Checked invariants:
//! 1. **No premature exit**: whenever any worker has exited, no task is
//!    queued anywhere and no worker is mid-execution. (A worker exits
//!    only on `pending == 0`; register-before-push makes that read
//!    prove the system empty. The [`Variant::PushBeforeRegister`]
//!    teeth-check loses the race and exits with work outstanding.)
//! 2. **Counter accounting** (correct variant): `pending` always equals
//!    queued tasks + executing workers + registered-but-unpushed
//!    children.
//! 3. **Terminally**: all workers exited, every task executed, nothing
//!    queued — no lost work. No state has a blocked worker (the pool
//!    spins through its sweep; there is no wait to miss a wakeup on).

use super::sched::{self, Model};
use super::Report;

/// Which protocol to check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// The shipped register-before-push protocol.
    Correct,
    /// Spawns push the child before registering it — the classic
    /// premature-exit bug.
    PushBeforeRegister,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Pc {
    /// Idle sweep, probing one source per step: 0 = own deque,
    /// 1 = injector, 2.. = victims in order, last = the pending read.
    Scan(u8),
    /// Executing `Task(task)`, `left` children still to spawn;
    /// `mid` = the first half of the current child's spawn is done.
    Exec { task: u8, left: u8, mid: bool },
    /// Exited.
    Done,
}

/// Model state.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TermModel {
    variant: Variant,
    /// The shared counter (i32: the broken variant may underflow — the
    /// model keeps the value exact rather than wrapping).
    pending: i32,
    /// Shared FIFO injector (front = index 0).
    injector: Vec<u8>,
    /// Per-worker deques: owner pops the back, thieves take the front.
    deques: Vec<Vec<u8>>,
    pc: Vec<Pc>,
    executed: u32,
    /// Total tasks the configuration generates.
    total: u32,
}

/// 1 + n·size(n-1): `Task(n)` spawns n children `Task(n-1)`.
fn task_tree_size(n: u8) -> u32 {
    1 + (n as u32) * if n > 0 { task_tree_size(n - 1) } else { 0 }
}

impl TermModel {
    /// `workers` workers over an injector seeded with `roots` (each
    /// pre-registered, as the pool does with its root tasks).
    pub fn new(variant: Variant, workers: usize, roots: &[u8]) -> Self {
        TermModel {
            variant,
            pending: roots.len() as i32,
            injector: roots.to_vec(),
            deques: vec![Vec::new(); workers],
            pc: vec![Pc::Scan(0); workers],
            executed: 0,
            total: roots.iter().map(|&r| task_tree_size(r)).sum(),
        }
    }

    fn workers(&self) -> usize {
        self.pc.len()
    }

    fn start_exec(&self, s: &mut TermModel, tid: usize, task: u8) {
        s.pc[tid] = Pc::Exec {
            task,
            left: task,
            mid: false,
        };
    }
}

impl Model for TermModel {
    fn threads(&self) -> usize {
        self.workers()
    }

    fn runnable(&self, tid: usize) -> bool {
        self.pc[tid] != Pc::Done
    }

    fn step(&self, tid: usize) -> Vec<(String, Self)> {
        let mut s = self.clone();
        match self.pc[tid] {
            Pc::Done => Vec::new(),
            Pc::Scan(stage) => {
                let victims: Vec<usize> = (0..self.workers()).filter(|&w| w != tid).collect();
                let label;
                if stage == 0 {
                    // Own deque, LIFO pop.
                    if let Some(task) = s.deques[tid].pop() {
                        self.start_exec(&mut s, tid, task);
                        label = format!("w{tid}:pop local Task({task})");
                    } else {
                        s.pc[tid] = Pc::Scan(1);
                        label = format!("w{tid}:local empty");
                    }
                } else if stage == 1 {
                    if !s.injector.is_empty() {
                        let task = s.injector.remove(0);
                        self.start_exec(&mut s, tid, task);
                        label = format!("w{tid}:take injector Task({task})");
                    } else {
                        s.pc[tid] = Pc::Scan(2);
                        label = format!("w{tid}:injector empty");
                    }
                } else if let Some(&v) = victims.get(stage as usize - 2) {
                    if !s.deques[v].is_empty() {
                        let task = s.deques[v].remove(0);
                        self.start_exec(&mut s, tid, task);
                        label = format!("w{tid}:steal Task({task}) from w{v}");
                    } else {
                        s.pc[tid] = Pc::Scan(stage + 1);
                        label = format!("w{tid}:w{v} empty");
                    }
                } else {
                    // The termination read.
                    if self.pending == 0 {
                        s.pc[tid] = Pc::Done;
                        label = format!("w{tid}:pending==0 → exit");
                    } else {
                        s.pc[tid] = Pc::Scan(0);
                        label = format!("w{tid}:pending={} → rescan", self.pending);
                    }
                }
                vec![(label, s)]
            }
            Pc::Exec { task, left, mid } => {
                if left == 0 {
                    // Completion: everything this task spawned is
                    // already registered, so the decrement cannot free
                    // the exit check early.
                    s.pending -= 1;
                    s.executed += 1;
                    s.pc[tid] = Pc::Scan(0);
                    return vec![(format!("w{tid}:complete Task({task})"), s)];
                }
                let child = task - 1;
                let register_first = self.variant == Variant::Correct;
                if !mid {
                    if register_first {
                        s.pending += 1;
                    } else {
                        s.deques[tid].push(child);
                    }
                    s.pc[tid] = Pc::Exec {
                        task,
                        left,
                        mid: true,
                    };
                    let what = if register_first { "register" } else { "push" };
                    vec![(format!("w{tid}:{what} child Task({child})"), s)]
                } else {
                    if register_first {
                        s.deques[tid].push(child);
                    } else {
                        s.pending += 1;
                    }
                    s.pc[tid] = Pc::Exec {
                        task,
                        left: left - 1,
                        mid: false,
                    };
                    let what = if register_first { "push" } else { "register" };
                    vec![(format!("w{tid}:{what} child Task({child})"), s)]
                }
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        let queued: usize =
            self.injector.len() + self.deques.iter().map(|d| d.len()).sum::<usize>();
        let executing = self
            .pc
            .iter()
            .filter(|p| matches!(p, Pc::Exec { .. }))
            .count();
        if self.pc.contains(&Pc::Done) && (queued > 0 || executing > 0) {
            return Err(format!(
                "premature exit: a worker exited with {queued} task(s) queued and {executing} executing"
            ));
        }
        if self.variant == Variant::Correct {
            let registered_unpushed = self
                .pc
                .iter()
                .filter(|p| matches!(p, Pc::Exec { mid: true, .. }))
                .count();
            let expected = (queued + executing + registered_unpushed) as i32;
            if self.pending != expected {
                return Err(format!(
                    "counter drift: pending={} but {queued} queued + {executing} executing + {registered_unpushed} registered-unpushed",
                    self.pending
                ));
            }
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.pc.iter().any(|p| *p != Pc::Done) {
            return Err("terminal state with a non-exited worker".to_string());
        }
        if self.executed != self.total {
            return Err(format!(
                "lost work: executed {} of {} tasks",
                self.executed, self.total
            ));
        }
        if self.pending != 0 {
            return Err(format!("terminal pending = {}", self.pending));
        }
        Ok(())
    }
}

/// The verification runs: the shipped protocol proved on one (plus,
/// when `deep`, a second larger) configuration; push-before-register
/// refuted.
pub fn suite(deep: bool) -> Vec<Report> {
    let mut reports = vec![
        Report {
            name: "term: correct, 2 workers, Task(2) root",
            expect_flaw: false,
            outcome: sched::explore(TermModel::new(Variant::Correct, 2, &[2]), 2_000_000),
        },
        Report {
            name: "term: push-before-register is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                TermModel::new(Variant::PushBeforeRegister, 2, &[2]),
                2_000_000,
            ),
        },
    ];
    if deep {
        reports.push(Report {
            name: "term: correct, 2 workers, two roots",
            expect_flaw: false,
            outcome: sched::explore(TermModel::new(Variant::Correct, 2, &[2, 1]), 8_000_000),
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::super::sched::Outcome;
    use super::*;

    #[test]
    fn fast_suite_holds() {
        for r in suite(false) {
            assert!(
                r.ok(),
                "{}: unexpected outcome {:?}",
                r.name,
                match r.outcome {
                    Outcome::Proved { states } => format!("proved ({states})"),
                    Outcome::Flaw(ref ce) => format!("flaw: {} via {:?}", ce.reason, ce.trace),
                    Outcome::Truncated { states } => format!("truncated ({states})"),
                }
            );
        }
    }

    #[cfg(feature = "model-check")]
    #[test]
    fn deep_suite_holds() {
        for r in suite(true) {
            assert!(r.ok(), "{}", r.name);
        }
    }

    #[test]
    fn premature_exit_counterexample_names_the_bug() {
        let out = sched::explore(
            TermModel::new(Variant::PushBeforeRegister, 2, &[2]),
            2_000_000,
        );
        match out {
            Outcome::Flaw(ce) => assert!(ce.reason.contains("premature exit"), "{}", ce.reason),
            other => panic!("expected premature-exit flaw, got {other:?}"),
        }
    }

    #[test]
    fn task_tree_sizes() {
        assert_eq!(task_tree_size(0), 1);
        assert_eq!(task_tree_size(1), 2);
        assert_eq!(task_tree_size(2), 5);
    }
}
