//! Model of the result-cache single-flight publication protocol
//! (crates/core/src/service.rs): concurrent identical mine requests
//! coalesce onto one mine. The cache slot for a key is `Absent`,
//! `InFlight`, or `Ready(value)` under one mutex; a requester that
//! finds it `Absent` installs `InFlight` and becomes the *leader* (it
//! mines); one that finds `InFlight` becomes a *follower* and waits on
//! the condvar; one that finds `Ready` is served the published value. A
//! leader that completes publishes `Ready` and wakes every follower; a
//! leader that fails (cancel, panic, typed error) *abandons* — removes
//! the `InFlight` entry and wakes every follower, so exactly one of
//! them re-takes leadership and the rest keep waiting. Followers
//! re-check the slot under the lock on every wake (no trust in the
//! wake itself).
//!
//! The model's atomic actions mirror the code's critical sections: the
//! probe/install step is one action (one `Mutex` lock), the publish /
//! abandon is one action (lock, update, `notify_all`), and a follower
//! wake is one action (the post-wake recheck under the lock — runnable
//! only once the slot has left `InFlight`, which is exactly the
//! condvar-with-recheck discipline; a lost wakeup would show up as a
//! model deadlock).
//!
//! Checked invariants:
//! 1. **Single flight**: at most one requester is mining a key at any
//!    moment. The [`Variant::LateInsert`] teeth-check installs the
//!    entry only at publish time and lets two leaders mine at once.
//! 2. **Served values are published values**: every served requester
//!    observed the mined value, never an unset slot. The
//!    [`Variant::ServeWithoutRecheck`] teeth-check trusts the wake and
//!    serves whatever is there.
//! 3. **Failure frees the key**: after a leader fails, followers make
//!    progress (one re-leads). The [`Variant::FailLeavesInFlight`]
//!    teeth-check leaves the tombstone `InFlight` and deadlocks its
//!    followers — caught by the explorer's stuck-state detection.
//! 4. **Coalescing is real** (terminal): with no scripted failures,
//!    exactly one mine ran no matter how many requesters raced.

use super::sched::{self, Model};
use super::Report;

/// Which protocol to check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// The shipped single-flight protocol.
    Correct,
    /// The leader installs the `InFlight` entry only when it publishes
    /// — two racing requesters both find `Absent` and both mine.
    LateInsert,
    /// A failing leader leaves the `InFlight` entry behind — followers
    /// wait forever on a mine nobody is running.
    FailLeavesInFlight,
    /// A woken follower serves the slot without rechecking it — after a
    /// leader failure it serves an unset value.
    ServeWithoutRecheck,
}

/// The cache slot for the (single modeled) key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Slot {
    Absent,
    InFlight,
    Ready(u8),
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Pc {
    /// About to run the probe/install critical section.
    Probe,
    /// Leading: mining the value.
    Mine,
    /// Following: waiting for the slot to leave `InFlight`.
    Wait,
    /// Served (`Some(value)`) or failed (`None`).
    Done(Option<u8>),
}

/// Model state.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SingleFlightModel {
    variant: Variant,
    slot: Slot,
    pc: Vec<Pc>,
    /// Scripted failure: requester `tid` fails if it ever leads.
    fails: Vec<bool>,
    /// Mines started (the expensive operation being deduplicated).
    mines: u8,
}

impl SingleFlightModel {
    /// One requester per entry of `fails`; requester `tid` is scripted
    /// to fail (cancel/panic/typed error) if it ever becomes leader.
    pub fn new(variant: Variant, fails: &[bool]) -> Self {
        SingleFlightModel {
            variant,
            slot: Slot::Absent,
            pc: vec![Pc::Probe; fails.len()],
            fails: fails.to_vec(),
            mines: 0,
        }
    }

    /// The deterministic mined value (a mine is a pure function of the
    /// config, so every successful leader produces the same value).
    const VALUE: u8 = 7;

    fn miners(&self) -> usize {
        self.pc.iter().filter(|p| **p == Pc::Mine).count()
    }
}

impl Model for SingleFlightModel {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn runnable(&self, tid: usize) -> bool {
        match self.pc[tid] {
            Pc::Done(_) => false,
            // The condvar-with-recheck discipline: a follower only runs
            // once the slot has left `InFlight` (publish or abandon
            // notified it). If the slot is stuck `InFlight` with no
            // leader, the model deadlocks — which is the bug.
            Pc::Wait => self.slot != Slot::InFlight,
            _ => true,
        }
    }

    fn step(&self, tid: usize) -> Vec<(String, Self)> {
        match self.pc[tid] {
            Pc::Done(_) => Vec::new(),
            Pc::Probe => {
                let mut s = self.clone();
                match self.slot {
                    Slot::Ready(v) => {
                        s.pc[tid] = Pc::Done(Some(v));
                        vec![(format!("r{tid}:probe → hit"), s)]
                    }
                    Slot::InFlight => {
                        s.pc[tid] = Pc::Wait;
                        vec![(format!("r{tid}:probe → coalesce, wait"), s)]
                    }
                    Slot::Absent => {
                        if self.variant != Variant::LateInsert {
                            s.slot = Slot::InFlight;
                        }
                        s.pc[tid] = Pc::Mine;
                        let label = if self.variant == Variant::LateInsert {
                            format!("r{tid}:probe → lead WITHOUT installing InFlight")
                        } else {
                            format!("r{tid}:probe → install InFlight, lead")
                        };
                        vec![(label, s)]
                    }
                }
            }
            Pc::Mine => {
                let mut s = self.clone();
                s.mines += 1;
                if self.fails[tid] {
                    // The leader's mine fails (cancel / panic / typed
                    // error): abandon the entry and wake the followers.
                    if self.variant != Variant::FailLeavesInFlight {
                        s.slot = Slot::Absent;
                    }
                    s.pc[tid] = Pc::Done(None);
                    let label = if self.variant == Variant::FailLeavesInFlight {
                        format!("r{tid}:mine fails → exit LEAVING InFlight")
                    } else {
                        format!("r{tid}:mine fails → abandon entry, notify")
                    };
                    vec![(label, s)]
                } else {
                    s.slot = Slot::Ready(Self::VALUE);
                    s.pc[tid] = Pc::Done(Some(Self::VALUE));
                    vec![(format!("r{tid}:mine → publish Ready, notify"), s)]
                }
            }
            Pc::Wait => {
                let mut s = self.clone();
                match self.slot {
                    Slot::Ready(v) => {
                        s.pc[tid] = Pc::Done(Some(v));
                        vec![(format!("r{tid}:wake → recheck, hit"), s)]
                    }
                    Slot::Absent => {
                        if self.variant == Variant::ServeWithoutRecheck {
                            // Broken: trust the wake, serve the unset
                            // slot.
                            s.pc[tid] = Pc::Done(Some(0));
                            vec![(format!("r{tid}:wake → serve WITHOUT recheck"), s)]
                        } else {
                            // The leader failed: exactly this follower
                            // (the first to re-acquire the lock)
                            // re-takes leadership.
                            s.slot = Slot::InFlight;
                            s.pc[tid] = Pc::Mine;
                            vec![(format!("r{tid}:wake → entry gone, re-lead"), s)]
                        }
                    }
                    // Unreachable under `runnable`, kept total.
                    Slot::InFlight => Vec::new(),
                }
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if self.miners() > 1 {
            return Err(format!(
                "single-flight broken: {} requesters mining the same key at once",
                self.miners()
            ));
        }
        for (tid, pc) in self.pc.iter().enumerate() {
            if let Pc::Done(Some(v)) = pc {
                if *v != Self::VALUE {
                    return Err(format!(
                        "served unpublished value: r{tid} got {v} (mined value is {})",
                        Self::VALUE
                    ));
                }
            }
        }
        Ok(())
    }

    fn expects_termination(&self) -> bool {
        // A stuck state with an unserved requester (a follower waiting
        // on an `InFlight` nobody is mining) is a deadlock, not a
        // legitimate terminal.
        self.pc.iter().all(|p| matches!(p, Pc::Done(_)))
    }

    fn final_check(&self) -> Result<(), String> {
        if self.pc.iter().any(|p| !matches!(p, Pc::Done(_))) {
            return Err("terminal state with an unserved requester".to_string());
        }
        // Every requester either failed as a leader or was served the
        // published value (checked by the invariant); and coalescing is
        // real: successful mines beyond the failures are exactly one.
        let failures = self
            .pc
            .iter()
            .filter(|p| matches!(p, Pc::Done(None)))
            .count() as u8;
        let any_served = self.pc.iter().any(|p| matches!(p, Pc::Done(Some(_))));
        if any_served && self.mines != failures + 1 {
            return Err(format!(
                "coalescing failed: {} mines for {} leader failures (want {})",
                self.mines,
                failures,
                failures + 1
            ));
        }
        Ok(())
    }
}

/// The verification runs: the shipped protocol proved with clean and
/// failing leaders under contention (plus, when `deep`, a larger
/// configuration), and all three broken variants refuted.
pub fn suite(deep: bool) -> Vec<Report> {
    let mut reports = vec![
        Report {
            name: "single-flight: correct, 3 requesters, clean leader",
            expect_flaw: false,
            outcome: sched::explore(
                SingleFlightModel::new(Variant::Correct, &[false, false, false]),
                2_000_000,
            ),
        },
        Report {
            name: "single-flight: correct, failing leader hands off to a follower",
            expect_flaw: false,
            outcome: sched::explore(
                SingleFlightModel::new(Variant::Correct, &[true, false, false]),
                2_000_000,
            ),
        },
        Report {
            name: "single-flight: late-insert (double mine) is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                SingleFlightModel::new(Variant::LateInsert, &[false, false]),
                2_000_000,
            ),
        },
        Report {
            name: "single-flight: fail-leaves-InFlight (stuck followers) is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                SingleFlightModel::new(Variant::FailLeavesInFlight, &[true, false]),
                2_000_000,
            ),
        },
        Report {
            name: "single-flight: serve-without-recheck is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                SingleFlightModel::new(Variant::ServeWithoutRecheck, &[true, false]),
                2_000_000,
            ),
        },
    ];
    if deep {
        reports.push(Report {
            name: "single-flight: correct, 4 requesters, two failing leaders",
            expect_flaw: false,
            outcome: sched::explore(
                SingleFlightModel::new(Variant::Correct, &[true, true, false, false]),
                8_000_000,
            ),
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::super::sched::Outcome as Verdict;
    use super::*;

    #[test]
    fn fast_suite_holds() {
        for r in suite(false) {
            assert!(
                r.ok(),
                "{}: unexpected outcome {:?}",
                r.name,
                match r.outcome {
                    Verdict::Proved { states } => format!("proved ({states})"),
                    Verdict::Flaw(ref ce) => format!("flaw: {} via {:?}", ce.reason, ce.trace),
                    Verdict::Truncated { states } => format!("truncated ({states})"),
                }
            );
        }
    }

    #[cfg(feature = "model-check")]
    #[test]
    fn deep_suite_holds() {
        for r in suite(true) {
            assert!(r.ok(), "{}", r.name);
        }
    }

    #[test]
    fn double_mine_counterexample_names_the_bug() {
        let out = sched::explore(
            SingleFlightModel::new(Variant::LateInsert, &[false, false]),
            2_000_000,
        );
        match out {
            Verdict::Flaw(ce) => assert!(
                ce.reason.contains("single-flight broken") || ce.reason.contains("coalescing"),
                "{}",
                ce.reason
            ),
            other => panic!("expected single-flight flaw, got {other:?}"),
        }
    }

    #[test]
    fn stuck_followers_counterexample_is_a_deadlock() {
        let out = sched::explore(
            SingleFlightModel::new(Variant::FailLeavesInFlight, &[true, false]),
            2_000_000,
        );
        match out {
            Verdict::Flaw(ce) => assert!(
                ce.reason.contains("deadlock") || ce.reason.contains("stuck"),
                "{}",
                ce.reason
            ),
            other => panic!("expected deadlock flaw, got {other:?}"),
        }
    }

    #[test]
    fn unset_serve_counterexample_names_the_bug() {
        let out = sched::explore(
            SingleFlightModel::new(Variant::ServeWithoutRecheck, &[true, false]),
            2_000_000,
        );
        match out {
            Verdict::Flaw(ce) => assert!(
                ce.reason.contains("served unpublished value"),
                "{}",
                ce.reason
            ),
            other => panic!("expected unpublished-value flaw, got {other:?}"),
        }
    }
}
