//! Loom-lite: a deterministic explicit-state model checker for the two
//! concurrency protocols the miner's correctness rests on.
//!
//! [`sched`] is the exhaustive bounded-interleaving explorer: a model is
//! a finite state machine whose per-thread steps are exactly the
//! protocol's atomic actions (one lock acquisition, one atomic
//! load/store/RMW, one deque operation), and the explorer enumerates
//! *every* interleaving (with stale-read branching standing in for
//! weak-memory load semantics), checking an invariant in every reached
//! state and a completeness property in every terminal state.
//!
//! [`bound`] models [`SharedBound`](../../core/src/topk.rs): the
//! lock-free published top-k bound. It proves, under coherence-only
//! (i.e. fully relaxed) load semantics, that every value a reader can
//! observe is ≤ the true k-th best score, that the published sequence is
//! strictly increasing, and that the final published bound equals the
//! true k-th score — and it proves the checker has teeth by finding
//! counterexamples in three deliberately broken variants.
//!
//! [`term`] models the pending-counter termination protocol of
//! [`parallel.rs`](../../core/src/parallel.rs): register-before-push
//! spawning, complete-before-decrement, and exit on a zero read during
//! an empty scan. It proves no worker ever exits while any task is
//! queued or running (no premature exit, no lost work), and finds the
//! premature-exit counterexample when spawning pushes before it
//! registers.
//!
//! [`shard`] models the shard-residency/eviction protocol of
//! [`shard.rs`](../../graph/src/shard.rs): pin-on-acquire,
//! evict-unpinned-LRU-to-fit, release-decrements. It proves no shard is
//! evicted while a task is mining it, residency stays inside the memory
//! budget, no scripted root task is lost, and the blocked wait (every
//! resident shard pinned) is not a deadlock — and refutes the
//! evict-under-pin, budget-blind and leaky-release variants.
//!
//! [`cancel`] models the cooperative cancellation/drain protocol of
//! [`parallel.rs`](../../core/src/parallel.rs) and
//! [`sharded.rs`](../../core/src/sharded.rs): a once-set shared flag
//! observed at every loop top, drain-exactly-once on every exit path
//! (cancel, empty queue, and the `catch_unwind` panic path), at most
//! one stale task start per worker after cancellation. It proves no
//! counters are lost or double-merged on any interleaving — and
//! refutes the exit-without-drain, double-drain, and
//! panic-skips-publish variants.
//!
//! [`admission`] models the service admission-control protocol of
//! [`service.rs`](../../core/src/service.rs): one mutex-guarded slot
//! pool with a bounded wait queue, typed `Overloaded` shedding, and
//! RAII release on every exit path (complete, cancel, panic). It
//! proves slot conservation (`available + holders == capacity`
//! always), true queue accounting, shed-only-under-pressure, and a
//! full pool at quiescence — and refutes the leak-on-panic,
//! leak-queue-on-cancel, and double-release variants.
//!
//! [`singleflight`] models the result cache's single-flight
//! publication protocol of [`service.rs`](../../core/src/service.rs):
//! probe/install under one lock, leader mines, publish-or-abandon with
//! `notify_all`, followers recheck under the lock on every wake. It
//! proves at most one leader mines a key at a time, every served value
//! is the published one, a failed leader hands off to exactly one
//! follower, and coalescing is real (one mine per key absent failures)
//! — and refutes the late-insert (double mine), fail-leaves-InFlight
//! (stuck followers), and serve-without-recheck variants.
//!
//! Small configurations run in plain `cargo test`; the larger sweeps are
//! behind the `model-check` feature (CI's deep leg) and all of them run
//! via `grm-analyze model`.

pub mod admission;
pub mod bound;
pub mod cancel;
pub mod sched;
pub mod shard;
pub mod singleflight;
pub mod term;

use sched::Outcome;

/// One named verification run, for `grm-analyze model` output.
pub struct Report {
    /// Which protocol/configuration ran.
    pub name: &'static str,
    /// Whether a counterexample was *expected* (a teeth-check of a
    /// deliberately broken variant).
    pub expect_flaw: bool,
    /// What the explorer found.
    pub outcome: Outcome,
}

impl Report {
    /// Did the run match expectations?
    pub fn ok(&self) -> bool {
        match &self.outcome {
            Outcome::Proved { .. } => !self.expect_flaw,
            Outcome::Flaw(_) => self.expect_flaw,
            Outcome::Truncated { .. } => false,
        }
    }
}

/// The full verification suite (deep configurations included — the
/// feature gate only trims what runs under `cargo test -q`).
pub fn full_suite() -> Vec<Report> {
    let mut reports = bound::suite(true);
    reports.extend(term::suite(true));
    reports.extend(shard::suite(true));
    reports.extend(cancel::suite(true));
    reports.extend(admission::suite(true));
    reports.extend(singleflight::suite(true));
    reports
}
