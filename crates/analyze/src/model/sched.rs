//! The exhaustive bounded-interleaving explorer.
//!
//! A [`Model`] is a finite-state concurrent system: `step(tid)` returns
//! every successor state one atomic action of thread `tid` can produce
//! (more than one when the action is a load that may legally observe
//! stale values — the branching *is* the weak-memory semantics). The
//! explorer runs a depth-first search over the full interleaving graph
//! with a visited-state set, so it terminates on any finite model and
//! visits every reachable state exactly once.
//!
//! Soundness note: checking an invariant in every reachable state under
//! every interleaving of the modeled atomic actions is exhaustive for
//! the modeled granularity — the fidelity question is whether the model's
//! actions match the code's atomic operations, which is why the models
//! in [`super::bound`] / [`super::term`] mirror their sources
//! step-for-step and cite them.

use std::collections::HashSet;
use std::hash::Hash;

/// A finite-state concurrent protocol.
pub trait Model: Clone + Eq + Hash {
    /// Number of threads.
    fn threads(&self) -> usize;
    /// Whether thread `tid` has an enabled action in this state.
    fn runnable(&self, tid: usize) -> bool;
    /// All successor states one atomic action of `tid` can produce,
    /// with a human-readable action label for counterexample traces.
    fn step(&self, tid: usize) -> Vec<(String, Self)>;
    /// Safety invariant, checked in every reachable state.
    fn invariant(&self) -> Result<(), String>;
    /// Completeness property, checked in every terminal state (no
    /// thread runnable).
    fn final_check(&self) -> Result<(), String>;
    /// Whether a terminal state is legitimate (e.g. all workers exited);
    /// a non-terminal state with no runnable thread is a deadlock.
    fn expects_termination(&self) -> bool {
        true
    }
}

/// A violating run: the action labels from the initial state to the
/// violating state, plus what went wrong there.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Action labels along the violating path.
    pub trace: Vec<String>,
    /// The violated property.
    pub reason: String,
}

/// Result of an exploration.
#[derive(Debug)]
pub enum Outcome {
    /// Every reachable state satisfied the invariant and every terminal
    /// state the final check.
    Proved {
        /// Distinct states visited.
        states: usize,
    },
    /// A property was violated; the shortest-prefix DFS trace leading
    /// there.
    Flaw(Counterexample),
    /// The state budget ran out before the space was covered — the
    /// configuration is too large, not proved.
    Truncated {
        /// Distinct states visited before giving up.
        states: usize,
    },
}

/// DFS frame: (state, its successors, next successor index, label of
/// the action that reached it).
type Frame<M> = (M, Vec<(String, M)>, usize, String);

/// Exhaustively explore `init`'s interleaving graph, up to `max_states`
/// distinct states.
pub fn explore<M: Model>(init: M, max_states: usize) -> Outcome {
    let mut visited: HashSet<M> = HashSet::new();
    let mut stack: Vec<Frame<M>> = Vec::new();

    let push_state = |state: M,
                      label: String,
                      visited: &mut HashSet<M>,
                      stack: &mut Vec<Frame<M>>|
     -> Result<(), Counterexample> {
        if !visited.insert(state.clone()) {
            return Ok(());
        }
        let trace = |stack: &Vec<Frame<M>>, last: &str| {
            let mut t: Vec<String> = stack
                .iter()
                .map(|(_, _, _, l)| l.clone())
                .filter(|l| !l.is_empty())
                .collect();
            t.push(last.to_string());
            t
        };
        if let Err(reason) = state.invariant() {
            return Err(Counterexample {
                trace: trace(stack, &label),
                reason,
            });
        }
        let mut succ = Vec::new();
        for tid in 0..state.threads() {
            if state.runnable(tid) {
                succ.extend(state.step(tid));
            }
        }
        if succ.is_empty() {
            if !state.expects_termination() {
                return Err(Counterexample {
                    trace: trace(stack, &label),
                    reason: "deadlock: no runnable thread in a non-final state".to_string(),
                });
            }
            if let Err(reason) = state.final_check() {
                return Err(Counterexample {
                    trace: trace(stack, &label),
                    reason,
                });
            }
        }
        stack.push((state, succ, 0, label));
        Ok(())
    };

    if let Err(ce) = push_state(init, String::new(), &mut visited, &mut stack) {
        return Outcome::Flaw(ce);
    }
    while let Some((_, succ, idx, _)) = stack.last_mut() {
        if visited.len() > max_states {
            return Outcome::Truncated {
                states: visited.len(),
            };
        }
        let Some((label, next)) = succ.get(*idx).cloned() else {
            stack.pop();
            continue;
        };
        *idx += 1;
        if let Err(ce) = push_state(next, label, &mut visited, &mut stack) {
            return Outcome::Flaw(ce);
        }
    }
    Outcome::Proved {
        states: visited.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a "non-atomic" counter via read+write
    /// steps: the lost-update bug every checker must find.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct LostUpdate {
        counter: u8,
        /// Per-thread: None = not read yet, Some(v) = local copy held.
        held: Vec<Option<u8>>,
        done: Vec<bool>,
        atomic: bool,
    }

    impl Model for LostUpdate {
        fn threads(&self) -> usize {
            self.held.len()
        }
        fn runnable(&self, tid: usize) -> bool {
            !self.done[tid]
        }
        fn step(&self, tid: usize) -> Vec<(String, Self)> {
            let mut s = self.clone();
            if self.atomic {
                s.counter += 1;
                s.done[tid] = true;
                return vec![(format!("t{tid}:fetch_add"), s)];
            }
            match self.held[tid] {
                None => {
                    s.held[tid] = Some(self.counter);
                    vec![(format!("t{tid}:read"), s)]
                }
                Some(v) => {
                    s.counter = v + 1;
                    s.done[tid] = true;
                    vec![(format!("t{tid}:write"), s)]
                }
            }
        }
        fn invariant(&self) -> Result<(), String> {
            Ok(())
        }
        fn final_check(&self) -> Result<(), String> {
            if self.counter == self.held.len() as u8 {
                Ok(())
            } else {
                Err(format!("lost update: counter == {}", self.counter))
            }
        }
    }

    fn init(atomic: bool) -> LostUpdate {
        LostUpdate {
            counter: 0,
            held: vec![None; 2],
            done: vec![false; 2],
            atomic,
        }
    }

    #[test]
    fn finds_the_lost_update() {
        match explore(init(false), 10_000) {
            Outcome::Flaw(ce) => {
                assert!(ce.reason.contains("lost update"));
                assert!(!ce.trace.is_empty());
            }
            other => panic!("expected a flaw, got {other:?}"),
        }
    }

    #[test]
    fn proves_the_atomic_version() {
        match explore(init(true), 10_000) {
            Outcome::Proved { states } => assert!(states >= 3),
            other => panic!("expected a proof, got {other:?}"),
        }
    }

    #[test]
    fn truncates_on_budget() {
        assert!(matches!(explore(init(false), 1), Outcome::Truncated { .. }));
    }
}
