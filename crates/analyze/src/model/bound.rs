//! Model of `SharedBound` (crates/core/src/topk.rs): the dynamic top-k
//! bound published through an `AtomicU64` and read lock-free by pruning
//! workers.
//!
//! The model mirrors `offer`/`get` step-for-step at atomic granularity:
//!
//! - **read** — the lock-free pre-check load in `offer` (and the `get`
//!   every pruning site performs). Loads branch over *every* version the
//!   thread's coherence floor allows: a thread that last observed
//!   version `j` may see any version `≥ j` (or `j` itself — arbitrarily
//!   stale). This is coherence-only semantics, i.e. what `Relaxed`
//!   guarantees; proving the invariants under it proves the Relaxed
//!   pre-check load sound, and a fortiori the Acquire load.
//! - **insert+publish** — the mutex critical section of `offer` (lock,
//!   heap insert, read `prev`, conditional Release store, unlock) as one
//!   atomic action: everything it touches is only touched under the
//!   same lock, so no other thread can observe an intermediate state.
//!   The in-lock `prev` load reads the *latest* version — that is the
//!   mutex-ordering argument the `// ordering:` comment in `offer`
//!   makes, and the [`Variant::StalePrevUnderLock`] teeth-check shows
//!   the monotonicity proof genuinely depends on it.
//!
//! Checked invariants (every state, every interleaving):
//! 1. the published sequence is strictly increasing (monotone bound);
//! 2. every published value is ≤ the true k-th best score of the whole
//!    workload — so pruning strictly below any observable bound never
//!    cuts a final top-k member, however stale the read;
//! 3. terminally, the bound equals the true k-th best score exactly
//!    (skipped offers lose nothing).

use super::sched::{self, Model};
use super::Report;

/// Which implementation to check: the real one, or a deliberately
/// broken teeth-check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// The shipped protocol.
    Correct,
    /// The in-lock `prev` load may return stale versions (as if the
    /// mutex did not order the Relaxed load): breaks strict
    /// monotonicity by double-publishing.
    StalePrevUnderLock,
    /// Publishes the *best* heap score instead of the k-th: unsound
    /// bound (prunes future top-k members).
    PublishMax,
    /// Publishes before the heap has k elements: unsound bound.
    EarlyPublish,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Pc {
    Idle,
    /// Passed the pre-check with this score; about to enter the lock.
    Armed(u64),
}

/// Model state. Scores are integers (the real f64 scores are totally
/// ordered where it matters; ties included in configs below).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BoundModel {
    variant: Variant,
    k: usize,
    /// k-th best of every score in `todo` at construction.
    true_kth: u64,
    /// Per-thread pending offers, consumed from the back.
    todo: Vec<Vec<u64>>,
    pc: Vec<Pc>,
    /// All inserted scores, sorted descending (the top-k heap's
    /// contents; keeping all of them only strengthens the k-th).
    heap: Vec<u64>,
    /// Published bound values, in publication order.
    versions: Vec<u64>,
    /// Per-thread coherence floor: how many versions this thread has
    /// definitely observed (a later load may not see fewer).
    seen: Vec<usize>,
}

impl BoundModel {
    /// A model where thread `t` offers `scripts[t]` (in order) into a
    /// shared bound of size `k`.
    pub fn new(variant: Variant, k: usize, scripts: &[&[u64]]) -> Self {
        let mut all: Vec<u64> = scripts.iter().flat_map(|s| s.iter().copied()).collect();
        all.sort_unstable_by(|a, b| b.cmp(a));
        let true_kth = all.get(k - 1).copied().unwrap_or(0);
        BoundModel {
            variant,
            k,
            true_kth,
            todo: scripts
                .iter()
                .map(|s| s.iter().rev().copied().collect())
                .collect(),
            pc: vec![Pc::Idle; scripts.len()],
            heap: Vec::new(),
            versions: Vec::new(),
            seen: vec![0; scripts.len()],
        }
    }

    /// The bound the critical section would publish, per variant.
    fn publishable(&self, heap: &[u64]) -> Option<u64> {
        match self.variant {
            Variant::PublishMax if heap.len() >= self.k => heap.first().copied(),
            Variant::EarlyPublish => heap.last().copied(),
            _ if heap.len() >= self.k => Some(heap[self.k - 1]),
            _ => None,
        }
    }
}

impl Model for BoundModel {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn runnable(&self, tid: usize) -> bool {
        !matches!(self.pc[tid], Pc::Idle) || !self.todo[tid].is_empty()
    }

    fn step(&self, tid: usize) -> Vec<(String, Self)> {
        let mut out = Vec::new();
        match self.pc[tid] {
            Pc::Idle => {
                let Some(&score) = self.todo[tid].last() else {
                    return out;
                };
                // The pre-check load: any version ≥ the thread's floor
                // may be observed (coherence-only / Relaxed semantics).
                for j in self.seen[tid]..=self.versions.len() {
                    let observed = j.checked_sub(1).map(|i| self.versions[i]);
                    let mut s = self.clone();
                    s.seen[tid] = j;
                    match observed {
                        Some(b) if score <= b => {
                            // Skip the lock: cannot raise the k-th.
                            s.todo[tid].pop();
                            out.push((format!("t{tid}:read v{j}→skip {score}"), s));
                        }
                        _ => {
                            s.pc[tid] = Pc::Armed(score);
                            out.push((format!("t{tid}:read v{j}→arm {score}"), s));
                        }
                    }
                }
            }
            Pc::Armed(score) => {
                // The critical section, one atomic action (see module
                // docs). `prev` is the latest version — except in the
                // StalePrevUnderLock teeth-check, where it branches.
                let prev_choices: Vec<usize> = if self.variant == Variant::StalePrevUnderLock {
                    (self.seen[tid]..=self.versions.len()).collect()
                } else {
                    vec![self.versions.len()]
                };
                for j in prev_choices {
                    let mut s = self.clone();
                    s.todo[tid].pop();
                    s.pc[tid] = Pc::Idle;
                    let at = s.heap.partition_point(|&h| h >= score);
                    s.heap.insert(at, score);
                    let prev = j.checked_sub(1).map(|i| self.versions[i]);
                    if let Some(new_bound) = s.publishable(&s.heap) {
                        if prev.is_none_or(|p| new_bound > p) {
                            s.versions.push(new_bound);
                        }
                    }
                    s.seen[tid] = s.versions.len();
                    out.push((format!("t{tid}:insert {score} (prev v{j})"), s));
                }
            }
        }
        out
    }

    fn invariant(&self) -> Result<(), String> {
        if let Some(w) = self.versions.windows(2).find(|w| w[1] <= w[0]) {
            return Err(format!(
                "published bound not strictly increasing: {} then {}",
                w[0], w[1]
            ));
        }
        if let Some(v) = self.versions.iter().find(|&&v| v > self.true_kth) {
            return Err(format!(
                "published bound {v} exceeds the true k-th score {} — a reader pruning below it could cut a final top-k member",
                self.true_kth
            ));
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        let offered: usize = self.heap.len() + self.todo.iter().map(|t| t.len()).sum::<usize>();
        if offered < self.k {
            return Ok(()); // config never fills the heap: nothing to pin
        }
        match self.versions.last() {
            Some(&v) if v == self.true_kth => Ok(()),
            Some(&v) => Err(format!(
                "final bound {v} != true k-th score {}",
                self.true_kth
            )),
            None => Err("no bound was ever published".to_string()),
        }
    }
}

/// The verification runs: correct protocol proved on two
/// configurations (plus a deeper one when `deep`), three broken
/// variants refuted.
pub fn suite(deep: bool) -> Vec<Report> {
    let mut reports = vec![
        Report {
            name: "bound: correct, 2 threads, k=2, distinct scores",
            expect_flaw: false,
            outcome: sched::explore(
                BoundModel::new(Variant::Correct, 2, &[&[5, 1], &[4, 3]]),
                200_000,
            ),
        },
        Report {
            name: "bound: correct, 2 threads, k=2, tied scores",
            expect_flaw: false,
            outcome: sched::explore(
                BoundModel::new(Variant::Correct, 2, &[&[4, 4], &[4, 2]]),
                200_000,
            ),
        },
        Report {
            name: "bound: stale prev under lock is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                BoundModel::new(Variant::StalePrevUnderLock, 2, &[&[5, 1], &[4, 3]]),
                200_000,
            ),
        },
        Report {
            name: "bound: publishing the max instead of the k-th is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                BoundModel::new(Variant::PublishMax, 2, &[&[5, 1], &[4, 3]]),
                200_000,
            ),
        },
        Report {
            name: "bound: publishing before the heap fills is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                BoundModel::new(Variant::EarlyPublish, 2, &[&[5, 1], &[4, 3]]),
                200_000,
            ),
        },
    ];
    if deep {
        reports.push(Report {
            name: "bound: correct, 3 threads, k=3",
            expect_flaw: false,
            outcome: sched::explore(
                BoundModel::new(Variant::Correct, 3, &[&[6, 2], &[5, 3], &[4, 1]]),
                5_000_000,
            ),
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::super::sched::Outcome;
    use super::*;

    #[test]
    fn fast_suite_holds() {
        for r in suite(false) {
            assert!(
                r.ok(),
                "{}: unexpected outcome {:?}",
                r.name,
                match r.outcome {
                    Outcome::Proved { states } => format!("proved ({states})"),
                    Outcome::Flaw(ref ce) => format!("flaw: {} via {:?}", ce.reason, ce.trace),
                    Outcome::Truncated { states } => format!("truncated ({states})"),
                }
            );
        }
    }

    #[cfg(feature = "model-check")]
    #[test]
    fn deep_suite_holds() {
        for r in suite(true) {
            assert!(r.ok(), "{}", r.name);
        }
    }

    #[test]
    fn stale_prev_counterexample_is_a_double_publish() {
        let out = sched::explore(
            BoundModel::new(Variant::StalePrevUnderLock, 2, &[&[5, 1], &[4, 3]]),
            200_000,
        );
        match out {
            Outcome::Flaw(ce) => assert!(ce.reason.contains("strictly increasing")),
            other => panic!("expected monotonicity flaw, got {other:?}"),
        }
    }
}
