//! Model of the service admission-control protocol
//! (crates/core/src/service.rs): a fixed pool of `capacity` slots
//! guarded by one mutex, a bounded wait queue of depth `queue_depth`,
//! and RAII release. A request's admission decision is one critical
//! section: take a free slot, or join the queue if it has room, or be
//! shed with a typed `Overloaded` response. A queued request leaves by
//! taking a freed slot or by cancelling (client disconnect, deadline,
//! daemon shutdown); a slot holder leaves by completing, cancelling
//! mid-mine, or panicking — and on *every* one of those paths the slot
//! returns to the pool exactly once, because the release lives in a
//! guard's `Drop` and the panic unwinds through `catch_unwind`.
//!
//! The model's atomic actions mirror the code's critical sections: the
//! arrive/decide step is one action (one `Mutex` lock), the queue take
//! is one action (the post-condvar-wake recheck under the same lock),
//! and each exit path is one action (the guard drop). Worker outcomes
//! (complete / cancel / panic) are scripted per requester so every
//! combination of exit paths is explored against every interleaving.
//!
//! Checked invariants:
//! 1. **Slot conservation**: `available + holders == capacity` in every
//!    reachable state — a slot is never minted and never lost. The
//!    [`Variant::LeakOnPanic`] and [`Variant::DoubleRelease`]
//!    teeth-checks break this in opposite directions.
//! 2. **Queue accounting**: the waiting counter equals the number of
//!    queued requesters, so shedding decisions are made against the
//!    true queue depth. The [`Variant::LeakQueueOnCancel`] teeth-check
//!    leaves a phantom waiter behind and is refuted.
//! 3. **Shed only under pressure**: a request is shed only when no slot
//!    was free *and* the queue was full at its decision point.
//! 4. **No lost slot at quiescence** (terminal): every requester
//!    reached a decision (served, cancelled, or shed), the pool is
//!    back to `available == capacity`, and the queue is empty.

use super::sched::{self, Model};
use super::Report;

/// Which protocol to check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// The shipped RAII slot-accounting protocol.
    Correct,
    /// A panicking worker's unwind path skips the slot release — the
    /// pool shrinks by one on every panic.
    LeakOnPanic,
    /// A queued requester that cancels forgets to decrement the waiting
    /// counter — later arrivals are shed against a phantom queue.
    LeakQueueOnCancel,
    /// The cancel path releases the slot explicitly *and* the guard
    /// releases it again — the pool grows past capacity.
    DoubleRelease,
}

/// What a requester is scripted to do once it holds a slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Outcome {
    /// Mine to completion, release via guard drop.
    Complete,
    /// Observe its cancel token mid-mine, drain, release via guard drop.
    Cancel,
    /// Panic mid-mine, release via the unwind path.
    Panic,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Pc {
    /// About to run the arrive/decide critical section.
    Arrive,
    /// In the bounded queue, waiting for a freed slot (or cancelling).
    Queued,
    /// Holding a slot, mining.
    Holding,
    /// Decided: served, cancelled, or shed.
    Done,
}

/// Model state.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AdmissionModel {
    variant: Variant,
    capacity: u8,
    queue_depth: u8,
    /// Free slots (the mutex-guarded counter).
    available: u8,
    /// The mutex-guarded waiting counter the shed decision reads.
    waiting: u8,
    pc: Vec<Pc>,
    /// Scripted slot-holder outcome per requester.
    script: Vec<Outcome>,
    /// Requesters shed with `Overloaded`.
    shed: u8,
    /// Sticky witness: a shed happened while a slot was free or the
    /// true queue had room (checked against pc, not `waiting`).
    bad_shed: bool,
}

impl AdmissionModel {
    /// `scripts.len()` requesters over `capacity` slots and a queue of
    /// depth `queue_depth`; each requester follows its scripted outcome
    /// if and when it gets a slot.
    pub fn new(variant: Variant, capacity: u8, queue_depth: u8, scripts: &[Outcome]) -> Self {
        AdmissionModel {
            variant,
            capacity,
            queue_depth,
            available: capacity,
            waiting: 0,
            pc: vec![Pc::Arrive; scripts.len()],
            script: scripts.to_vec(),
            shed: 0,
            bad_shed: false,
        }
    }

    fn holders(&self) -> u8 {
        self.pc.iter().filter(|p| **p == Pc::Holding).count() as u8
    }

    fn queued(&self) -> u8 {
        self.pc.iter().filter(|p| **p == Pc::Queued).count() as u8
    }
}

impl Model for AdmissionModel {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn runnable(&self, tid: usize) -> bool {
        match self.pc[tid] {
            Pc::Done => false,
            // A queued requester can always cancel (disconnect can
            // happen any time), so the condvar wait is never a
            // deadlock in the model; taking a slot additionally needs
            // one free.
            _ => true,
        }
    }

    fn step(&self, tid: usize) -> Vec<(String, Self)> {
        match self.pc[tid] {
            Pc::Done => Vec::new(),
            Pc::Arrive => {
                // One critical section: take / queue / shed.
                let mut s = self.clone();
                if self.available > 0 {
                    s.available -= 1;
                    s.pc[tid] = Pc::Holding;
                    vec![(format!("r{tid}:admit (slot taken)"), s)]
                } else if self.waiting < self.queue_depth {
                    s.waiting += 1;
                    s.pc[tid] = Pc::Queued;
                    vec![(format!("r{tid}:queue"), s)]
                } else {
                    s.shed += 1;
                    s.pc[tid] = Pc::Done;
                    // Shed legitimacy is judged against the *true*
                    // occupancy, not the (possibly leaked) counter.
                    if self.available > 0 || self.queued() < self.queue_depth {
                        s.bad_shed = true;
                    }
                    vec![(format!("r{tid}:shed (Overloaded)"), s)]
                }
            }
            Pc::Queued => {
                let mut next = Vec::with_capacity(2);
                if self.available > 0 {
                    // The post-wake recheck under the lock.
                    let mut s = self.clone();
                    s.available -= 1;
                    s.waiting -= 1;
                    s.pc[tid] = Pc::Holding;
                    next.push((format!("r{tid}:wake → take slot"), s));
                }
                // Cancellation is always possible while queued.
                let mut s = self.clone();
                if self.variant != Variant::LeakQueueOnCancel {
                    s.waiting -= 1;
                }
                s.pc[tid] = Pc::Done;
                let label = if self.variant == Variant::LeakQueueOnCancel {
                    format!("r{tid}:cancel in queue WITHOUT leaving the count")
                } else {
                    format!("r{tid}:cancel in queue")
                };
                next.push((label, s));
                next
            }
            Pc::Holding => {
                let mut s = self.clone();
                let label = match self.script[tid] {
                    Outcome::Complete => {
                        s.available += 1;
                        format!("r{tid}:complete → guard releases slot")
                    }
                    Outcome::Cancel => {
                        s.available += 1;
                        if self.variant == Variant::DoubleRelease {
                            // Broken: explicit release on the cancel
                            // path *plus* the guard's.
                            s.available += 1;
                        }
                        format!("r{tid}:cancelled mid-mine → drain, release")
                    }
                    Outcome::Panic => {
                        if self.variant != Variant::LeakOnPanic {
                            s.available += 1;
                        }
                        if self.variant == Variant::LeakOnPanic {
                            format!("r{tid}:panic → unwind WITHOUT release")
                        } else {
                            format!("r{tid}:panic → unwind releases slot")
                        }
                    }
                };
                s.pc[tid] = Pc::Done;
                vec![(label, s)]
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if self.available > self.capacity {
            return Err(format!(
                "slot minted: {} available with capacity {}",
                self.available, self.capacity
            ));
        }
        if self.available + self.holders() != self.capacity {
            return Err(format!(
                "slot leaked: available={} + holders={} != capacity={}",
                self.available,
                self.holders(),
                self.capacity
            ));
        }
        if self.waiting != self.queued() {
            return Err(format!(
                "queue accounting drift: waiting counter {} but {} requesters queued",
                self.waiting,
                self.queued()
            ));
        }
        if self.bad_shed {
            return Err(
                "shed without pressure: Overloaded while a slot or queue spot was free".to_string(),
            );
        }
        Ok(())
    }

    fn expects_termination(&self) -> bool {
        // A stuck state with an undecided requester would be a lost
        // wakeup; the cancel edge keeps `Queued` always runnable, so
        // the shipped protocol never deadlocks — but a variant must
        // not get away with one either.
        self.pc.iter().all(|p| *p == Pc::Done)
    }

    fn final_check(&self) -> Result<(), String> {
        if self.pc.iter().any(|p| *p != Pc::Done) {
            return Err("terminal state with an undecided requester".to_string());
        }
        if self.available != self.capacity {
            return Err(format!(
                "lost slot at quiescence: {} of {} slots returned",
                self.available, self.capacity
            ));
        }
        if self.waiting != 0 {
            return Err(format!(
                "phantom waiter at quiescence: waiting counter stuck at {}",
                self.waiting
            ));
        }
        Ok(())
    }
}

/// The verification runs: the shipped protocol proved across every exit
/// path (complete / cancel / panic) under contention and queue pressure
/// (plus, when `deep`, a larger configuration), and all three broken
/// variants refuted.
pub fn suite(deep: bool) -> Vec<Report> {
    use Outcome::{Cancel, Complete, Panic};
    let mut reports = vec![
        Report {
            name: "admission: correct, 1 slot, queue 1, complete/panic/cancel burst",
            expect_flaw: false,
            outcome: sched::explore(
                AdmissionModel::new(Variant::Correct, 1, 1, &[Complete, Panic, Cancel]),
                2_000_000,
            ),
        },
        Report {
            name: "admission: correct, 2 slots, queue 1, all exit paths",
            expect_flaw: false,
            outcome: sched::explore(
                AdmissionModel::new(Variant::Correct, 2, 1, &[Panic, Cancel, Complete, Panic]),
                2_000_000,
            ),
        },
        Report {
            name: "admission: leak-on-panic is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                AdmissionModel::new(Variant::LeakOnPanic, 1, 1, &[Panic, Complete, Complete]),
                2_000_000,
            ),
        },
        Report {
            name: "admission: leak-queue-on-cancel is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                AdmissionModel::new(
                    Variant::LeakQueueOnCancel,
                    1,
                    1,
                    &[Complete, Cancel, Complete],
                ),
                2_000_000,
            ),
        },
        Report {
            name: "admission: double-release is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                AdmissionModel::new(Variant::DoubleRelease, 1, 1, &[Cancel, Complete, Complete]),
                2_000_000,
            ),
        },
    ];
    if deep {
        reports.push(Report {
            name: "admission: correct, 2 slots, queue 2, 5-requester burst",
            expect_flaw: false,
            outcome: sched::explore(
                AdmissionModel::new(
                    Variant::Correct,
                    2,
                    2,
                    &[Complete, Panic, Cancel, Complete, Panic],
                ),
                8_000_000,
            ),
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::super::sched::Outcome as Verdict;
    use super::*;

    #[test]
    fn fast_suite_holds() {
        for r in suite(false) {
            assert!(
                r.ok(),
                "{}: unexpected outcome {:?}",
                r.name,
                match r.outcome {
                    Verdict::Proved { states } => format!("proved ({states})"),
                    Verdict::Flaw(ref ce) => format!("flaw: {} via {:?}", ce.reason, ce.trace),
                    Verdict::Truncated { states } => format!("truncated ({states})"),
                }
            );
        }
    }

    #[cfg(feature = "model-check")]
    #[test]
    fn deep_suite_holds() {
        for r in suite(true) {
            assert!(r.ok(), "{}", r.name);
        }
    }

    #[test]
    fn panic_leak_counterexample_names_the_bug() {
        let out = sched::explore(
            AdmissionModel::new(
                Variant::LeakOnPanic,
                1,
                1,
                &[Outcome::Panic, Outcome::Complete],
            ),
            2_000_000,
        );
        match out {
            Verdict::Flaw(ce) => assert!(ce.reason.contains("slot leaked"), "{}", ce.reason),
            other => panic!("expected slot-leak flaw, got {other:?}"),
        }
    }

    #[test]
    fn queue_leak_counterexample_names_the_bug() {
        let out = sched::explore(
            AdmissionModel::new(
                Variant::LeakQueueOnCancel,
                1,
                1,
                &[Outcome::Complete, Outcome::Cancel],
            ),
            2_000_000,
        );
        match out {
            Verdict::Flaw(ce) => assert!(
                ce.reason.contains("queue accounting drift") || ce.reason.contains("phantom"),
                "{}",
                ce.reason
            ),
            other => panic!("expected queue-drift flaw, got {other:?}"),
        }
    }

    #[test]
    fn double_release_counterexample_names_the_bug() {
        let out = sched::explore(
            AdmissionModel::new(
                Variant::DoubleRelease,
                1,
                0,
                &[Outcome::Cancel, Outcome::Complete],
            ),
            2_000_000,
        );
        match out {
            Verdict::Flaw(ce) => assert!(
                ce.reason.contains("slot minted") || ce.reason.contains("slot leaked"),
                "{}",
                ce.reason
            ),
            other => panic!("expected minted-slot flaw, got {other:?}"),
        }
    }
}
