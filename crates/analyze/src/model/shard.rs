//! Model of the shard-residency/eviction protocol
//! (crates/graph/src/shard.rs `ShardPool`): root tasks acquire a shard
//! before mining it (pin + load, evicting unpinned least-recently-used
//! residents to stay inside the memory budget) and release it after.
//! The pool's single mutex makes acquire and release atomic, so the
//! model gives each of them one step; the *use* of the shard between
//! them is its own step, because that is exactly where a buggy evictor
//! could pull the model out from under a running task.
//!
//! Shards have unit cost and the budget counts shards — the code's
//! byte-granular accounting is a scalar refinement of this model (the
//! victim search and the fits-check compare sums the same way, only the
//! units differ).
//!
//! Checked invariants (all variants):
//! 1. **No eviction under a pin**: every worker that is using or about
//!    to release a shard finds it resident. ([`Variant::EvictPinned`]
//!    ignores pins when choosing a victim and is refuted.)
//! 2. **Bounded residency**: resident shards never exceed the budget.
//!    ([`Variant::BudgetBlind`] loads without making room and is
//!    refuted.)
//! 3. **Pin accounting**: total pins equal the number of workers
//!    currently holding a shard. ([`Variant::LeakyRelease`] forgets the
//!    decrement and is refuted.)
//!
//! Terminally: every worker finished its script and every scripted
//! task was served (no lost root task), with zero pins outstanding.
//! A worker that cannot make room (every resident shard pinned) retries
//! in place — the retry is a self-loop step, so the explorer sees a
//! successor and correctly distinguishes the benign wait from a
//! deadlock; progress comes from the pin-holder's own release step.

use super::sched::{self, Model};
use super::Report;

/// Which protocol to check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// The shipped pool: evict only unpinned LRU residents, check the
    /// budget before loading, release decrements the pin.
    Correct,
    /// Victim search ignores pins: the LRU resident is evicted even
    /// while a task is mining it.
    EvictPinned,
    /// Loads skip the fits-check entirely: residency is unbounded.
    BudgetBlind,
    /// Release forgets the pin decrement: shards stay pinned forever.
    LeakyRelease,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Phase {
    /// About to acquire the current scripted shard (one mutex-guarded
    /// step: hit-and-pin, or evict-until-fits + load + pin, or retry).
    Acquire,
    /// Mining the shard (pin held).
    Use,
    /// About to release it (pin still held).
    Release,
}

/// Model state.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ShardModel {
    variant: Variant,
    /// Residency budget, in unit-cost shards.
    budget: u8,
    /// Pin count per shard.
    pins: Vec<u8>,
    /// Resident shards, least recently used first.
    lru: Vec<u8>,
    /// Per-worker script of shard ids (root tasks in demand order).
    scripts: Vec<Vec<u8>>,
    /// Per-worker position in its script.
    at: Vec<usize>,
    phase: Vec<Phase>,
    /// Tasks completed (use steps executed).
    served: u32,
}

impl ShardModel {
    /// `budget`-shard pool over `shards` shards, one worker per script.
    pub fn new(variant: Variant, budget: u8, shards: u8, scripts: &[&[u8]]) -> Self {
        ShardModel {
            variant,
            budget,
            pins: vec![0; shards as usize],
            lru: Vec::new(),
            scripts: scripts.iter().map(|s| s.to_vec()).collect(),
            at: vec![0; scripts.len()],
            phase: vec![Phase::Acquire; scripts.len()],
            served: 0,
        }
    }

    fn done(&self, tid: usize) -> bool {
        self.at[tid] >= self.scripts[tid].len()
    }

    fn wanted(&self, tid: usize) -> u8 {
        self.scripts[tid][self.at[tid]]
    }

    fn resident(&self, shard: u8) -> bool {
        self.lru.contains(&shard)
    }

    /// Move `shard` to the most-recently-used end.
    fn touch(&mut self, shard: u8) {
        self.lru.retain(|&s| s != shard);
        self.lru.push(shard);
    }

    /// Total scripted tasks.
    fn total(&self) -> u32 {
        self.scripts.iter().map(|s| s.len() as u32).sum()
    }
}

impl Model for ShardModel {
    fn threads(&self) -> usize {
        self.scripts.len()
    }

    fn runnable(&self, tid: usize) -> bool {
        !self.done(tid)
    }

    fn step(&self, tid: usize) -> Vec<(String, Self)> {
        let mut s = self.clone();
        match self.phase[tid] {
            Phase::Acquire => {
                let shard = self.wanted(tid);
                if self.resident(shard) {
                    s.pins[shard as usize] += 1;
                    s.touch(shard);
                    s.phase[tid] = Phase::Use;
                    return vec![(format!("w{tid}:hit shard {shard}"), s)];
                }
                // Make room: evict LRU-first until the load fits. The
                // broken BudgetBlind variant skips this entirely; the
                // broken EvictPinned variant considers pinned victims.
                if self.variant != Variant::BudgetBlind {
                    while s.lru.len() as u8 >= s.budget {
                        let victim = s.lru.iter().copied().find(|&v| {
                            self.variant == Variant::EvictPinned || s.pins[v as usize] == 0
                        });
                        match victim {
                            Some(v) => s.lru.retain(|&x| x != v),
                            // Every resident shard is pinned: retry in
                            // place (the code drops the lock, sleeps and
                            // re-acquires; the self-loop models the
                            // bounded wait without losing the task).
                            None => return vec![(format!("w{tid}:blocked on pins"), self.clone())],
                        }
                    }
                }
                s.lru.push(shard);
                s.pins[shard as usize] += 1;
                s.phase[tid] = Phase::Use;
                vec![(format!("w{tid}:load shard {shard}"), s)]
            }
            Phase::Use => {
                s.served += 1;
                s.phase[tid] = Phase::Release;
                vec![(format!("w{tid}:mine shard {}", self.wanted(tid)), s)]
            }
            Phase::Release => {
                let shard = self.wanted(tid);
                if self.variant != Variant::LeakyRelease {
                    s.pins[shard as usize] -= 1;
                }
                s.at[tid] += 1;
                s.phase[tid] = Phase::Acquire;
                vec![(format!("w{tid}:release shard {shard}"), s)]
            }
        }
    }

    fn invariant(&self) -> Result<(), String> {
        // 1. A held shard (pin taken, release not yet run) is resident.
        for tid in 0..self.threads() {
            if !self.done(tid) && matches!(self.phase[tid], Phase::Use | Phase::Release) {
                let shard = self.wanted(tid);
                if !self.resident(shard) {
                    return Err(format!(
                        "evicted under a pin: w{tid} is using shard {shard} but it is not resident"
                    ));
                }
            }
        }
        // 2. Residency stays inside the budget.
        if self.lru.len() as u8 > self.budget {
            return Err(format!(
                "budget exceeded: {} resident shard(s) under a budget of {}",
                self.lru.len(),
                self.budget
            ));
        }
        // 3. Pins equal holders.
        let holders = (0..self.threads())
            .filter(|&t| !self.done(t) && matches!(self.phase[t], Phase::Use | Phase::Release))
            .count();
        let pins: u32 = self.pins.iter().map(|&p| p as u32).sum();
        if pins != holders as u32 {
            return Err(format!(
                "pin drift: {pins} pin(s) but {holders} holding worker(s)"
            ));
        }
        Ok(())
    }

    fn final_check(&self) -> Result<(), String> {
        if self.served != self.total() {
            return Err(format!(
                "lost root task: served {} of {} scripted tasks",
                self.served,
                self.total()
            ));
        }
        if self.pins.iter().any(|&p| p != 0) {
            return Err(format!("terminal pins = {:?}", self.pins));
        }
        Ok(())
    }
}

/// The verification runs: the shipped protocol proved under contention
/// (plus, when `deep`, a larger three-shard configuration); each broken
/// variant refuted on the invariant its bug violates.
pub fn suite(deep: bool) -> Vec<Report> {
    let mut reports = vec![
        Report {
            name: "shard: correct, budget 1, crossing scripts",
            expect_flaw: false,
            outcome: sched::explore(
                ShardModel::new(Variant::Correct, 1, 2, &[&[0, 1], &[1, 0]]),
                2_000_000,
            ),
        },
        Report {
            name: "shard: evict-under-pin is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                ShardModel::new(Variant::EvictPinned, 1, 2, &[&[0, 1], &[1, 0]]),
                2_000_000,
            ),
        },
        Report {
            name: "shard: budget-blind load is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                ShardModel::new(Variant::BudgetBlind, 1, 2, &[&[0], &[1]]),
                2_000_000,
            ),
        },
        Report {
            name: "shard: leaky release is refuted",
            expect_flaw: true,
            outcome: sched::explore(
                ShardModel::new(Variant::LeakyRelease, 1, 2, &[&[0], &[0]]),
                2_000_000,
            ),
        },
    ];
    if deep {
        reports.push(Report {
            name: "shard: correct, budget 2, three shards, crossing scripts",
            expect_flaw: false,
            outcome: sched::explore(
                ShardModel::new(Variant::Correct, 2, 3, &[&[0, 1, 2], &[2, 1, 0]]),
                8_000_000,
            ),
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::super::sched::Outcome;
    use super::*;

    #[test]
    fn fast_suite_holds() {
        for r in suite(false) {
            assert!(
                r.ok(),
                "{}: unexpected outcome {:?}",
                r.name,
                match r.outcome {
                    Outcome::Proved { states } => format!("proved ({states})"),
                    Outcome::Flaw(ref ce) => format!("flaw: {} via {:?}", ce.reason, ce.trace),
                    Outcome::Truncated { states } => format!("truncated ({states})"),
                }
            );
        }
    }

    #[cfg(feature = "model-check")]
    #[test]
    fn deep_suite_holds() {
        for r in suite(true) {
            assert!(r.ok(), "{}", r.name);
        }
    }

    #[test]
    fn evict_under_pin_counterexample_names_the_bug() {
        let out = sched::explore(
            ShardModel::new(Variant::EvictPinned, 1, 2, &[&[0, 1], &[1, 0]]),
            2_000_000,
        );
        match out {
            Outcome::Flaw(ce) => {
                assert!(ce.reason.contains("evicted under a pin"), "{}", ce.reason)
            }
            other => panic!("expected an evicted-under-pin flaw, got {other:?}"),
        }
    }

    #[test]
    fn budget_blind_counterexample_names_the_bug() {
        let out = sched::explore(
            ShardModel::new(Variant::BudgetBlind, 1, 2, &[&[0], &[1]]),
            2_000_000,
        );
        match out {
            Outcome::Flaw(ce) => assert!(ce.reason.contains("budget exceeded"), "{}", ce.reason),
            other => panic!("expected a budget-exceeded flaw, got {other:?}"),
        }
    }

    #[test]
    fn leaky_release_counterexample_names_the_bug() {
        let out = sched::explore(
            ShardModel::new(Variant::LeakyRelease, 1, 2, &[&[0], &[0]]),
            2_000_000,
        );
        match out {
            Outcome::Flaw(ce) => assert!(ce.reason.contains("pin drift"), "{}", ce.reason),
            other => panic!("expected a pin-drift flaw, got {other:?}"),
        }
    }

    #[test]
    fn blocked_wait_is_not_a_deadlock() {
        // Budget 1, both shards demanded concurrently: some schedules
        // pass through the blocked self-loop, yet every run terminates
        // with all tasks served.
        let out = sched::explore(
            ShardModel::new(Variant::Correct, 1, 2, &[&[0], &[1]]),
            2_000_000,
        );
        assert!(matches!(out, Outcome::Proved { .. }), "{out:?}");
    }
}
