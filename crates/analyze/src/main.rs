//! CLI driver for the repo's static analysis and model checking.

use grm_analyze::model::{self, sched::Outcome};
use grm_analyze::{diag, rules, walk};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: grm-analyze <command>

commands:
  check [--root <dir>] [--json]   lint the workspace; exit 1 if any diagnostic fires
  model                           run the full concurrency verification suite
  rules                           list the rule ids and what they enforce";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("model") => model(),
        Some("rules") => {
            for (id, what) in rules::RULES {
                println!("{id}: {what}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// `grm-analyze check`: lint the tree rooted at `--root` (default: the
/// enclosing workspace of the current directory).
fn check(args: &[String]) -> ExitCode {
    let json = args.iter().any(|a| a == "--json");
    let args: Vec<String> = args.iter().filter(|a| *a != "--json").cloned().collect();
    let root = match parse_root(&args) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let set = match walk::collect(&root) {
        Ok(set) => set,
        Err(e) => {
            eprintln!("error: cannot read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags = rules::run_all(&set);
    if json {
        println!(
            "{}",
            diag::render_json(set.files.len(), rules::RULES.len(), &diags)
        );
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!(
            "grm-analyze: {} files clean across {} rules",
            set.files.len(),
            rules::RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("grm-analyze: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    let mut it = args.iter();
    let mut root = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let dir = it.next().ok_or("error: --root needs a directory")?;
                root = Some(PathBuf::from(dir));
            }
            other => return Err(format!("error: unknown argument `{other}`\n{USAGE}")),
        }
    }
    match root {
        Some(r) => Ok(r),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("error: no cwd: {e}"))?;
            walk::find_root(&cwd).ok_or_else(|| {
                "error: no workspace Cargo.toml above the current directory; pass --root"
                    .to_string()
            })
        }
    }
}

/// `grm-analyze model`: run every verification configuration, including
/// the deep ones `cargo test` keeps behind the `model-check` feature.
fn model() -> ExitCode {
    let mut failed = false;
    for r in model::full_suite() {
        let (status, detail) = match &r.outcome {
            Outcome::Proved { states } => (
                if r.expect_flaw {
                    "UNEXPECTED"
                } else {
                    "proved"
                },
                format!("{states} states, no violation"),
            ),
            Outcome::Flaw(ce) => (
                if r.expect_flaw { "refuted" } else { "FLAW" },
                format!("{} (after: {})", ce.reason, ce.trace.join(" → ")),
            ),
            Outcome::Truncated { states } => {
                ("TRUNCATED", format!("budget exhausted at {states} states"))
            }
        };
        if !r.ok() {
            failed = true;
        }
        println!("[{status}] {}: {detail}", r.name);
    }
    if failed {
        println!("grm-analyze model: FAILED");
        ExitCode::FAILURE
    } else {
        println!("grm-analyze model: all runs matched expectations");
        ExitCode::SUCCESS
    }
}
