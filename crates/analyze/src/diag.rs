//! Diagnostics: what every rule emits, and the deterministic ordering
//! they are reported in.

use std::fmt;

/// One finding: rule id, repo-relative path, 1-based line, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (the same id `// lint: allow(<id>)` takes).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Build a finding for `rule` at `path:line`.
    pub fn new(rule: &'static str, path: &str, line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Sort findings by (path, line, rule) for stable output and testable
/// orderings.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}

/// Render a `check` run as machine-readable JSON (hand-rolled — the
/// analyzer stays dependency-free). Schema, pinned by test:
///
/// ```json
/// {"version":1,
///  "summary":{"files":N,"rules":N,"diagnostics":N},
///  "diagnostics":[{"rule":"…","path":"…","line":N,"message":"…"},…]}
/// ```
pub fn render_json(files: usize, rules: usize, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"version\":1,\"summary\":{{\"files\":{files},\"rules\":{rules},\"diagnostics\":{}}},\"diagnostics\":[",
        diags.len()
    ));
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            json_string(d.rule),
            json_string(&d.path),
            d.line,
            json_string(&d.message)
        ));
    }
    out.push_str("]}");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
