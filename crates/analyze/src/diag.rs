//! Diagnostics: what every rule emits, and the deterministic ordering
//! they are reported in.

use std::fmt;

/// One finding: rule id, repo-relative path, 1-based line, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (the same id `// lint: allow(<id>)` takes).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Build a finding for `rule` at `path:line`.
    pub fn new(rule: &'static str, path: &str, line: usize, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Sort findings by (path, line, rule) for stable output and testable
/// orderings.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}
