//! Workspace discovery: find the repo root, collect the `.rs` sources
//! the rules operate on, and pre-compute each file's scanned views and
//! `// lint: allow(...)` annotation coverage.

use crate::diag::Diagnostic;
use crate::lexer::{self, ScannedFile};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One collected source file with its scanned views and allow spans.
pub struct SourceFile {
    /// Repo-relative path, forward slashes.
    pub rel: String,
    /// Raw file contents.
    pub raw: String,
    /// Lexed views (code / comments / test regions), line-parallel.
    pub scan: ScannedFile,
    /// For each rule id: the set of 0-based lines an allow annotation
    /// covers.
    allows: HashMap<String, Vec<usize>>,
    /// Malformed annotations found while parsing (reported as findings).
    pub annotation_errors: Vec<Diagnostic>,
}

impl SourceFile {
    /// Scan `raw` (as `rel`) and extract its allow annotations.
    pub fn from_source(rel: &str, raw: String) -> SourceFile {
        let scan = lexer::scan(&raw);
        let mut f = SourceFile {
            rel: rel.to_string(),
            raw,
            scan,
            allows: HashMap::new(),
            annotation_errors: Vec::new(),
        };
        f.collect_allows();
        f
    }

    /// Whether `rule` is allowed on 0-based `line`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.get(rule).is_some_and(|v| v.contains(&line))
    }

    /// Parse `// lint: allow(<rule>) — <reason>` annotations.
    ///
    /// Coverage: an annotation trailing a code line covers that line
    /// only; an annotation on a comment-only line covers the following
    /// contiguous non-blank lines (paragraph scope), so one annotation
    /// can sit above a multi-line expression. A missing reason is a
    /// malformed annotation and is itself reported.
    fn collect_allows(&mut self) {
        let n = self.scan.comments.len();
        for i in 0..n {
            let comment = &self.scan.comments[i];
            let Some(pos) = comment.find("lint: allow(") else {
                continue;
            };
            let rest = &comment[pos + "lint: allow(".len()..];
            let Some(close) = rest.find(')') else {
                self.annotation_errors.push(Diagnostic::new(
                    "malformed-allow",
                    &self.rel,
                    i + 1,
                    "unclosed `lint: allow(` annotation",
                ));
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let reason = rest[close + 1..]
                .trim_start_matches([' ', '\u{2014}', '-', ':'])
                .trim();
            if rule.is_empty() || !reason.chars().any(|c| c.is_alphanumeric()) {
                self.annotation_errors.push(Diagnostic::new(
                    "malformed-allow",
                    &self.rel,
                    i + 1,
                    "`lint: allow(<rule>)` needs a rule id and a non-empty reason",
                ));
                continue;
            }
            let mut covered = vec![i];
            if self.scan.code[i].trim().is_empty() {
                // Paragraph scope: cover this line and everything below
                // it until the first blank source line.
                let mut j = i + 1;
                while j < n && !self.raw_line_is_blank(j) {
                    covered.push(j);
                    j += 1;
                }
            }
            self.allows.entry(rule).or_default().extend(covered);
        }
    }

    fn raw_line_is_blank(&self, line: usize) -> bool {
        self.raw
            .lines()
            .nth(line)
            .is_none_or(|l| l.trim().is_empty())
    }
}

/// The collected workspace sources the rules run over.
pub struct FileSet {
    /// Absolute repo root.
    pub root: PathBuf,
    /// Library/binary sources under `src/` and `crates/*/src/`.
    pub files: Vec<SourceFile>,
}

impl FileSet {
    /// Fetch a file by repo-relative path, if collected.
    pub fn get(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Read a repo file outside the collected set (raw text only).
    pub fn read_raw(&self, rel: &str) -> Option<String> {
        fs::read_to_string(self.root.join(rel)).ok()
    }
}

/// Walk up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collect the workspace sources: `src/**/*.rs` and `crates/*/src/**/*.rs`
/// (vendor stubs are read separately by the vendor rule; `tests/`,
/// `benches/` and fixture data are deliberately out of scope).
pub fn collect(root: &Path) -> std::io::Result<FileSet> {
    let mut files = Vec::new();
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let src = e.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    for dir in dirs {
        walk_rs(&dir, &mut |path| {
            let raw = fs::read_to_string(path)?;
            let rel = rel_path(root, path);
            files.push(SourceFile::from_source(&rel, raw));
            Ok(())
        })?;
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(FileSet {
        root: root.to_path_buf(),
        files,
    })
}

/// Depth-first walk calling `f` on every `.rs` file under `dir`.
pub fn walk_rs(dir: &Path, f: &mut dyn FnMut(&Path) -> std::io::Result<()>) -> std::io::Result<()> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Ok(()); // absent dir: nothing to scan
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path)?;
        }
    }
    Ok(())
}

/// `path` relative to `root`, with forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_allow_covers_its_own_line_only() {
        let f = SourceFile::from_source(
            "x.rs",
            "let a = x.unwrap(); // lint: allow(panic-in-hot-path) — fine\nlet b = y.unwrap();\n"
                .to_string(),
        );
        assert!(f.allowed("panic-in-hot-path", 0));
        assert!(!f.allowed("panic-in-hot-path", 1));
    }

    #[test]
    fn standalone_allow_covers_the_paragraph() {
        let src = "// lint: allow(alloc-in-arena) — warm-up only\n// continues here.\nlet v =\n    Vec::new();\n\nlet w = Vec::new();\n";
        let f = SourceFile::from_source("x.rs", src.to_string());
        assert!(f.allowed("alloc-in-arena", 2));
        assert!(f.allowed("alloc-in-arena", 3));
        assert!(!f.allowed("alloc-in-arena", 5), "blank line ends the scope");
    }

    #[test]
    fn missing_reason_is_malformed() {
        let f = SourceFile::from_source("x.rs", "// lint: allow(some-rule)\nfoo();\n".to_string());
        assert_eq!(f.annotation_errors.len(), 1);
        assert!(!f.allowed("some-rule", 1));
    }
}
