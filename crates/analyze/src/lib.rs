//! `grm-analyze`: the repo's own static analysis and model checking.
//!
//! Generic lints (clippy) cannot see this codebase's contracts: which
//! files are the mining hot path, which atomics publish across threads,
//! which struct is mirrored by four hand-maintained surfaces, which
//! modules promised to stay allocation-free, and which vendor stubs
//! must track the workspace's imports. This crate encodes those
//! contracts as enforced rules plus an exhaustive model checker for the
//! two concurrency protocols correctness rests on.
//!
//! Layering:
//!
//! - [`lexer`] — a comment/string-aware scanner producing line-parallel
//!   code and comment views of a Rust source file (no `syn`, no
//!   dependencies: the analyzer must build when everything else is
//!   broken).
//! - [`walk`] — workspace discovery and the
//!   `// lint: allow(<rule>) — <reason>` annotation grammar.
//! - [`flow`] — the statement-flow layer on top of the lexer views: a
//!   brace/block scope tree, a workspace type map, and expression-chain
//!   resolution, feeding the flow-aware rules (lock order, condvar
//!   discipline, cast audit).
//! - [`rules`] — the rule set; see [`rules::RULES`] for ids.
//! - [`model`] — the loom-lite bounded-interleaving checker and the
//!   [`model::bound`] / [`model::term`] protocol models.
//! - [`diag`] — `path:line: [rule] message` diagnostics.
//!
//! The `grm-analyze` binary drives it: `check` (lint the tree, exit
//! non-zero on findings), `model` (run the verification suite), `rules`
//! (list rule ids).

pub mod diag;
pub mod flow;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod walk;
