//! Statement-flow layer over the [`crate::lexer`] views: a brace/block
//! scope tree, a workspace type map (struct fields, `type` aliases,
//! method return types), and guard-binding hold-range tracking.
//!
//! The line-level rules of PR 6 ask "does this line contain X"; the
//! flow rules of this layer ask "is this `Condvar::wait` inside a
//! predicate loop", "which mutex guards are live at this `notify_all`",
//! and "what integer type does this cast narrow from". All of it stays
//! dependency-free: the lexer's code view (comments and literal bodies
//! blanked, ASCII-squashed so bytes == chars) is the only input, and
//! the tracker is deliberately a *scope* model, not a full parser —
//! exactly the token forms that decide block structure, bindings, and
//! simple type navigation are handled, everything else degrades to
//! `Unknown` (which the rules treat conservatively per rule).

use std::collections::HashMap;

/// A position in the line-parallel code view: 0-based line, byte column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 0-based line index.
    pub line: usize,
    /// Byte column within the line.
    pub col: usize,
}

/// What introduced a `{ ... }` block, decided by the tokens between the
/// previous statement boundary and the open brace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockKind {
    /// A function body; carries the function name.
    Fn(String),
    /// `loop { ... }`
    Loop,
    /// `while …` / `while let …`
    While,
    /// `for … in …`
    For,
    /// `if …` / `if let …`
    If,
    /// `else` / `else if …`
    Else,
    /// `match … { … }`
    Match,
    /// A `pat => { … }` match arm body.
    Arm,
    /// `impl T` / `impl Tr for T`; carries the self type.
    Impl(String),
    /// `struct T { … }`; carries the type name.
    Struct(String),
    /// `enum T { … }`
    Enum(String),
    /// `trait T { … }`
    Trait(String),
    /// `mod name { … }`
    Mod(String),
    /// `unsafe { … }`
    Unsafe,
    /// Anything else: bare scopes, struct literals, closure bodies.
    Expr,
}

/// One brace-delimited block in the scope tree.
#[derive(Debug)]
pub struct Block {
    /// Position of the opening `{`.
    pub open: Pos,
    /// Position of the closing `}` (end of file if unbalanced).
    pub close: Pos,
    /// Index of the enclosing block, if any.
    pub parent: Option<usize>,
    /// What introduced the block.
    pub kind: BlockKind,
}

/// The scope tree of one file's code view.
pub struct Flow {
    /// All blocks, in order of their opening brace.
    pub blocks: Vec<Block>,
}

const HEADER_KEYWORDS: &[&str] = &[
    "fn", "loop", "while", "for", "if", "else", "match", "impl", "struct", "enum", "trait", "mod",
    "unsafe",
];

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl Flow {
    /// Build the scope tree from a code view (comments/literals already
    /// blanked by the lexer, so every brace is structural).
    pub fn new(code: &[String]) -> Flow {
        let mut blocks: Vec<Block> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        for (line, text) in code.iter().enumerate() {
            for (col, b) in text.bytes().enumerate() {
                match b {
                    b'{' => {
                        let kind = block_kind(code, Pos { line, col });
                        blocks.push(Block {
                            open: Pos { line, col },
                            close: Pos {
                                line: code.len().saturating_sub(1),
                                col: 0,
                            },
                            parent: stack.last().copied(),
                            kind,
                        });
                        stack.push(blocks.len() - 1);
                    }
                    b'}' => {
                        if let Some(idx) = stack.pop() {
                            blocks[idx].close = Pos { line, col };
                        }
                    }
                    _ => {}
                }
            }
        }
        Flow { blocks }
    }

    /// Innermost block containing `pos` (a block contains its braces'
    /// interior, not the braces themselves).
    pub fn block_at(&self, pos: Pos) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, b) in self.blocks.iter().enumerate() {
            let after_open = (pos.line, pos.col) > (b.open.line, b.open.col);
            let before_close = (pos.line, pos.col) < (b.close.line, b.close.col);
            if after_open && before_close {
                best = Some(i); // blocks are ordered by open; later = inner
            }
        }
        best
    }

    /// Walk `idx` and its ancestors, innermost first.
    pub fn ancestors(&self, idx: usize) -> impl Iterator<Item = &Block> {
        let mut cur = Some(idx);
        std::iter::from_fn(move || {
            let i = cur?;
            cur = self.blocks[i].parent;
            Some(&self.blocks[i])
        })
    }

    /// The function body block enclosing `pos`, if any.
    pub fn enclosing_fn(&self, pos: Pos) -> Option<&Block> {
        let idx = self.block_at(pos)?;
        self.ancestors(idx)
            .find(|b| matches!(b.kind, BlockKind::Fn(_)))
    }

    /// The `impl` self type enclosing `pos`, if any.
    pub fn enclosing_impl(&self, pos: Pos) -> Option<&str> {
        let idx = self.block_at(pos)?;
        self.ancestors(idx).find_map(|b| match &b.kind {
            BlockKind::Impl(t) => Some(t.as_str()),
            _ => None,
        })
    }

    /// Whether `pos` sits inside a `loop`/`while`/`for` block *within*
    /// its enclosing function (the predicate-loop test for
    /// `Condvar::wait`).
    pub fn in_loop(&self, pos: Pos) -> bool {
        let Some(idx) = self.block_at(pos) else {
            return false;
        };
        for b in self.ancestors(idx) {
            match b.kind {
                BlockKind::Loop | BlockKind::While | BlockKind::For => return true,
                BlockKind::Fn(_) => return false,
                _ => {}
            }
        }
        false
    }
}

/// Decide what introduced the block opening at `open`: scan backwards
/// over the code view (newlines are whitespace) to the previous
/// statement boundary, then take the first keyword of that header.
fn block_kind(code: &[String], open: Pos) -> BlockKind {
    let mut header_rev: Vec<u8> = Vec::new();
    let mut depth = 0i32;
    let mut line = open.line;
    let mut col = open.col;
    'scan: loop {
        let bytes = code[line].as_bytes();
        while col > 0 {
            col -= 1;
            let b = bytes[col];
            match b {
                b')' | b']' => depth += 1,
                b'(' | b'[' => {
                    if depth == 0 {
                        break 'scan;
                    }
                    depth -= 1;
                }
                b';' | b'{' | b'}' if depth == 0 => break 'scan,
                b';' | b'{' | b'}' => {}
                b',' if depth == 0 => break 'scan,
                _ => {}
            }
            header_rev.push(b);
            if header_rev.len() > 400 {
                break 'scan;
            }
        }
        if line == 0 {
            break;
        }
        line -= 1;
        col = code[line].len();
        header_rev.push(b' ');
    }
    header_rev.reverse();
    let header = String::from_utf8_lossy(&header_rev).into_owned();
    if header.trim_end().ends_with("=>") {
        return BlockKind::Arm;
    }
    let tokens: Vec<&str> = header
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|t| !t.is_empty())
        .collect();
    let Some(kpos) = tokens
        .iter()
        .position(|t| HEADER_KEYWORDS.contains(t) && *t != "unsafe")
        .or_else(|| tokens.iter().position(|t| *t == "unsafe"))
    else {
        return BlockKind::Expr;
    };
    let name_after = |kw: &str| -> String {
        tokens
            .iter()
            .skip_while(|t| **t != kw)
            .nth(1)
            .unwrap_or(&"")
            .to_string()
    };
    match tokens[kpos] {
        "fn" => BlockKind::Fn(name_after("fn")),
        "loop" => BlockKind::Loop,
        "while" => BlockKind::While,
        "for" => BlockKind::For,
        "if" => BlockKind::If,
        "else" => BlockKind::Else,
        "match" => BlockKind::Match,
        "impl" => {
            // `impl Tr for T` names T; `impl T` names T. Generic params
            // were already split away by the tokenizer.
            let t = if tokens.contains(&"for") {
                name_after("for")
            } else {
                name_after("impl")
            };
            BlockKind::Impl(t)
        }
        "struct" => BlockKind::Struct(name_after("struct")),
        "enum" => BlockKind::Enum(name_after("enum")),
        "trait" => BlockKind::Trait(name_after("trait")),
        "mod" => BlockKind::Mod(name_after("mod")),
        "unsafe" => BlockKind::Unsafe,
        _ => BlockKind::Expr,
    }
}

// ---------------------------------------------------------------------------
// Workspace type map
// ---------------------------------------------------------------------------

/// A primitive integer type, with `usize`/`isize` pinned to 64 bits —
/// the same assumption the u32 edge cap encodes (the paper-scale arrays
/// are indexed by u32 precisely because the host is 64-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntTy {
    /// Signed?
    pub signed: bool,
    /// Width in bits.
    pub bits: u8,
}

impl IntTy {
    /// Parse a primitive integer type name.
    pub fn parse(name: &str) -> Option<IntTy> {
        let (signed, rest) = match name.as_bytes().first()? {
            b'u' => (false, &name[1..]),
            b'i' => (true, &name[1..]),
            _ => return None,
        };
        let bits = match rest {
            "8" => 8,
            "16" => 16,
            "32" => 32,
            "64" => 64,
            "128" => 128,
            "size" => 64,
            _ => return None,
        };
        Some(IntTy { signed, bits })
    }

    /// Whether a cast from `self` into `target` can lose or reinterpret
    /// value bits: a narrower target, a signed source into any unsigned
    /// target, or an unsigned source into a signed target that is not
    /// strictly wider.
    pub fn narrows_into(self, target: IntTy) -> bool {
        if target.bits < self.bits {
            return true;
        }
        match (self.signed, target.signed) {
            (true, false) => true,                     // sign dropped
            (false, true) => target.bits <= self.bits, // top bit reused
            _ => false,
        }
    }
}

/// What the resolver could learn about an expression's type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolved {
    /// A known primitive integer type.
    Int(IntTy),
    /// Several candidate definitions disagree (e.g. a method name with
    /// both `usize` and `u64` returns in the workspace).
    Conflict(Vec<IntTy>),
    /// Known to not be a primitive integer.
    NonInt,
    /// Nothing known.
    Unknown,
    /// An integer literal with this value (safe iff it fits the target).
    Literal(u128),
}

/// Workspace-wide nominal type information, built textually from every
/// collected source file.
#[derive(Default)]
pub struct TypeMap {
    /// `(type name, field name)` → declared field type text.
    pub fields: HashMap<(String, String), String>,
    /// `type X = Y;` aliases.
    pub aliases: HashMap<String, String>,
    /// Method/function name → set of return-type texts seen.
    pub methods: HashMap<String, Vec<String>>,
}

impl TypeMap {
    /// Extend the map from one file's code view and scope tree.
    pub fn absorb(&mut self, code: &[String], flow: &Flow) {
        // Struct fields: `name: Type,` lines directly inside a struct
        // block.
        for b in &flow.blocks {
            let BlockKind::Struct(ref sname) = b.kind else {
                continue;
            };
            if sname.is_empty() {
                continue;
            }
            let last = b.close.line.min(code.len() - 1);
            for (line, full) in code.iter().enumerate().take(last + 1).skip(b.open.line) {
                let full = full.as_str();
                let lo = if line == b.open.line {
                    (b.open.col + 1).min(full.len())
                } else {
                    0
                };
                let hi = if line == b.close.line {
                    b.close.col.min(full.len())
                } else {
                    full.len()
                };
                // A single line can hold several `name: Type` fields —
                // split at generics-aware top-level commas.
                for part in split_top_commas(&full[lo..hi.max(lo)]) {
                    if let Some((field, ty)) = parse_field_decl(part) {
                        self.fields.insert((sname.clone(), field), ty);
                    }
                }
            }
        }
        let joined = code.join("\n");
        // `type X = Y;` aliases.
        let mut from = 0;
        while let Some(p) = joined[from..].find("type ") {
            let at = from + p;
            from = at + 5;
            if at > 0 && is_ident_char(joined.as_bytes()[at - 1]) {
                continue;
            }
            let rest = &joined[at + 5..];
            let Some(eq) = rest.find('=') else { continue };
            let Some(semi) = rest.find(';') else { continue };
            if semi < eq {
                continue;
            }
            let name = rest[..eq].trim();
            let target = rest[eq + 1..semi].trim();
            if !name.is_empty()
                && !name.contains('<')
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.aliases.insert(name.to_string(), target.to_string());
            }
        }
        // Function return types.
        for sig in fn_signatures(&joined) {
            if let Some(ret) = sig.ret {
                let entry = self.methods.entry(sig.name).or_default();
                if !entry.contains(&ret) {
                    entry.push(ret);
                }
            }
        }
    }

    /// Resolve a type *name* through aliases to a base text.
    pub fn base_type<'a>(&'a self, name: &'a str) -> &'a str {
        let mut cur = name;
        for _ in 0..8 {
            match self.aliases.get(cur) {
                Some(next) => cur = next,
                None => break,
            }
        }
        cur
    }

    /// Classify a type text as integer / non-integer.
    pub fn classify(&self, text: &str) -> Resolved {
        let t = strip_type(text);
        let t = self.base_type(&t);
        match IntTy::parse(t) {
            Some(i) => Resolved::Int(i),
            None => {
                if t.is_empty() {
                    Resolved::Unknown
                } else {
                    Resolved::NonInt
                }
            }
        }
    }

    /// Return types recorded for a method name, classified; builtins
    /// (`len`, `count`, `trailing_zeros`, …) are pinned to std's types.
    pub fn method_returns(&self, name: &str) -> Resolved {
        match name {
            "len" | "count" | "capacity" | "index" => {
                return Resolved::Int(IntTy {
                    signed: false,
                    bits: 64,
                })
            }
            "trailing_zeros" | "leading_zeros" | "count_ones" | "count_zeros" => {
                return Resolved::Int(IntTy {
                    signed: false,
                    bits: 32,
                })
            }
            _ => {}
        }
        let Some(rets) = self.methods.get(name) else {
            return Resolved::Unknown;
        };
        let mut ints = Vec::new();
        for r in rets {
            match self.classify(r) {
                Resolved::Int(i) => {
                    if !ints.contains(&i) {
                        ints.push(i);
                    }
                }
                // A non-integer overload makes the name ambiguous
                // beyond repair — give up rather than guess.
                _ => return Resolved::Unknown,
            }
        }
        match ints.len() {
            0 => Resolved::Unknown,
            1 => Resolved::Int(ints[0]),
            _ => Resolved::Conflict(ints),
        }
    }

    /// Element type of a slice/array/`Vec` type text, if recognizable.
    pub fn element_type(&self, text: &str) -> Option<String> {
        let t = strip_type(text);
        let t = self.base_type(&t).trim();
        if let Some(inner) = t.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let inner = inner.split(';').next().unwrap_or(inner);
            return Some(inner.trim().to_string());
        }
        for wrapper in ["Vec<", "VecDeque<"] {
            if let Some(rest) = t.strip_prefix(wrapper) {
                return rest.strip_suffix('>').map(|s| s.trim().to_string());
            }
        }
        None
    }
}

/// Strip references, lifetimes and `mut` from a type text, and peel
/// transparent wrappers (`Arc<…>`, `Box<…>`, `Rc<…>`).
pub fn strip_type(text: &str) -> String {
    let mut t = text.trim();
    loop {
        let before = t;
        t = t.trim_start_matches('&').trim_start_matches('*').trim();
        if let Some(rest) = t.strip_prefix('\'') {
            // lifetime: skip the ident
            let end = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            t = rest[end..].trim();
        }
        for kw in ["mut ", "dyn ", "const "] {
            if let Some(rest) = t.strip_prefix(kw) {
                t = rest.trim();
            }
        }
        for wrapper in ["Arc<", "Box<", "Rc<"] {
            if let Some(rest) = t.strip_prefix(wrapper) {
                if let Some(inner) = rest.strip_suffix('>') {
                    t = inner.trim();
                }
            }
        }
        if t == before {
            return t.to_string();
        }
    }
}

/// Split at commas outside `<>`/`()`/`[]` nesting.
fn split_top_commas(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, b) in text.bytes().enumerate() {
        match b {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

/// `name: Type,` at the top level of a struct body (visibility allowed,
/// attributes and doc lines yield nothing).
fn parse_field_decl(line: &str) -> Option<(String, String)> {
    let t = line.trim();
    let t = t.strip_prefix("pub(crate)").unwrap_or(t).trim();
    let t = t.strip_prefix("pub").unwrap_or(t).trim();
    let colon = t.find(':')?;
    let name = t[..colon].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    // `::` (paths) and `:` inside generics are not field separators.
    if t.as_bytes().get(colon + 1) == Some(&b':') {
        return None;
    }
    let ty = t[colon + 1..].trim().trim_end_matches(',').trim();
    if ty.is_empty() || ty.contains('{') {
        return None;
    }
    Some((name.to_string(), ty.to_string()))
}

/// One parsed `fn` signature from the joined code view.
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// Byte offset of the `fn` keyword in the joined text.
    pub offset: usize,
    /// Raw parameter list text (between the signature parens).
    pub params: String,
    /// Return type text, if an `->` was present.
    pub ret: Option<String>,
}

/// Scan the joined code view for `fn` items and split their signatures.
pub fn fn_signatures(joined: &str) -> Vec<FnSig> {
    let bytes = joined.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = joined[from..].find("fn ") {
        let at = from + p;
        from = at + 3;
        if at > 0 && is_ident_char(bytes[at - 1]) {
            continue;
        }
        let rest = &joined[at + 3..];
        let name_end = rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        let name = &rest[..name_end];
        if name.is_empty() {
            continue;
        }
        // Skip generics, find the parameter parens.
        let mut i = at + 3 + name_end;
        let mut angle = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'<' => angle += 1,
                b'>' => angle -= 1,
                b'(' if angle <= 0 => break,
                b'{' | b';' => break,
                _ => {}
            }
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'(' {
            continue;
        }
        let popen = i;
        let mut depth = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        if i >= bytes.len() {
            continue;
        }
        let params = joined[popen + 1..i].to_string();
        // Between `)` and the body `{` / `;`: an optional `-> T`,
        // possibly followed by a `where` clause.
        let tail_start = i + 1;
        let mut j = tail_start;
        let mut angle = 0i32;
        while j < bytes.len() {
            match bytes[j] {
                b'<' => angle += 1,
                b'>' if angle > 0 => angle -= 1,
                b'{' | b';' if angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let tail = &joined[tail_start..j.min(joined.len())];
        let ret = tail.find("->").map(|a| {
            let r = &tail[a + 2..];
            let r = r.split(" where ").next().unwrap_or(r);
            r.trim().to_string()
        });
        out.push(FnSig {
            name: name.to_string(),
            offset: at,
            params,
            ret,
        });
    }
    out
}

/// Split a parameter list at top-level commas into `(name, type)` pairs
/// (`self` receivers are skipped, patterns keep their first ident).
pub fn split_params(params: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    let bytes = params.as_bytes();
    let mut parts = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth -= 1,
            b',' if depth == 0 => {
                parts.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&params[start..]);
    for part in parts {
        let part = part.trim();
        let Some(colon) = part.find(':') else {
            continue;
        };
        let name = part[..colon]
            .trim()
            .trim_start_matches("mut ")
            .trim()
            .to_string();
        if name.is_empty() || name.contains(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
            continue;
        }
        out.push((name, part[colon + 1..].trim().to_string()));
    }
    out
}

// ---------------------------------------------------------------------------
// Expression chains
// ---------------------------------------------------------------------------

/// Extract the postfix chain ending just before byte `end` of `line`:
/// identifiers, `self`, `.field`, `.method(…)`, `[…]`, `::`, and one
/// optional leading parenthesized group. Returns the chain text.
pub fn chain_before(line: &str, end: usize) -> String {
    let bytes = line.as_bytes();
    let mut i = end;
    let mut depth = 0i32;
    let start = loop {
        if i == 0 {
            break 0;
        }
        let b = bytes[i - 1];
        let keep = match b {
            b')' | b']' => {
                depth += 1;
                true
            }
            b'(' | b'[' => {
                if depth == 0 {
                    break i;
                }
                depth -= 1;
                true
            }
            _ if depth > 0 => true,
            b'.' | b':' => true,
            _ if is_ident_char(b) => true,
            _ => break i,
        };
        if !keep {
            break i;
        }
        i -= 1;
    };
    line[start..end].trim().to_string()
}

/// Extract the receiver chain ending at `dot` (the `.` of a method
/// call), e.g. `self.cache.published` for `self.cache.published.wait(…)`.
pub fn receiver_before(line: &str, dot: usize) -> String {
    chain_before(line, dot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn flow_of(src: &str) -> (Flow, Vec<String>) {
        let s = lexer::scan(src);
        let f = Flow::new(&s.code);
        (f, s.code)
    }

    #[test]
    fn brace_scope_tracker_kinds_and_nesting() {
        let src = "impl Admission {\n    fn admit(&self) {\n        loop {\n            if x {\n                break;\n            }\n        }\n    }\n}\n";
        let (f, _) = flow_of(src);
        let kinds: Vec<&BlockKind> = f.blocks.iter().map(|b| &b.kind).collect();
        assert_eq!(kinds.len(), 4);
        assert_eq!(*kinds[0], BlockKind::Impl("Admission".into()));
        assert_eq!(*kinds[1], BlockKind::Fn("admit".into()));
        assert_eq!(*kinds[2], BlockKind::Loop);
        assert_eq!(*kinds[3], BlockKind::If);
        // The `if` nests in the loop nests in the fn nests in the impl.
        assert_eq!(f.blocks[3].parent, Some(2));
        assert_eq!(f.blocks[2].parent, Some(1));
        assert_eq!(f.blocks[1].parent, Some(0));
        assert!(f.in_loop(Pos { line: 4, col: 12 }));
        assert_eq!(
            f.enclosing_impl(Pos { line: 4, col: 12 }),
            Some("Admission")
        );
    }

    #[test]
    fn loop_detection_stops_at_fn_boundary() {
        let src = "fn outer() {\n    loop {\n        fn inner() {\n            wait();\n        }\n    }\n}\n";
        let (f, _) = flow_of(src);
        assert!(
            !f.in_loop(Pos { line: 3, col: 12 }),
            "inner fn resets loops"
        );
    }

    #[test]
    fn while_let_and_match_arms() {
        let src = "fn f() {\n    while let Some(x) = it.next() {\n        match x {\n            Some(y) => {\n                y;\n            }\n            _ => {}\n        }\n    }\n}\n";
        let (f, _) = flow_of(src);
        let kinds: Vec<&BlockKind> = f.blocks.iter().map(|b| &b.kind).collect();
        assert!(kinds.contains(&&BlockKind::While));
        assert!(kinds.contains(&&BlockKind::Match));
        assert!(kinds.contains(&&BlockKind::Arm));
        assert!(f.in_loop(Pos { line: 4, col: 16 }));
    }

    #[test]
    fn raw_strings_and_literal_braces_do_not_derail_scopes() {
        let src = "fn f() {\n    let s = r#\"{ not a block }\"#;\n    let t = \"{{\";\n    if s == t {\n        g();\n    }\n}\n";
        let (f, _) = flow_of(src);
        // Exactly two blocks: the fn body and the if body.
        assert_eq!(f.blocks.len(), 2);
        assert_eq!(f.blocks[1].kind, BlockKind::If);
        assert_eq!(f.blocks[0].close.line, 6);
    }

    #[test]
    fn struct_fields_aliases_and_method_returns() {
        let src = "pub type NodeId = u32;\npub struct Pool {\n    pub state: Mutex<State>,\n    counts: Vec<u64>,\n}\nimpl Pool {\n    fn len(&self) -> usize { 0 }\n    fn total(&self) -> u64 { 1 }\n}\n";
        let (f, code) = flow_of(src);
        let mut tm = TypeMap::default();
        tm.absorb(&code, &f);
        assert_eq!(
            tm.fields.get(&("Pool".into(), "state".into())).unwrap(),
            "Mutex<State>"
        );
        assert_eq!(tm.base_type("NodeId"), "u32");
        assert_eq!(
            tm.classify("NodeId"),
            Resolved::Int(IntTy {
                signed: false,
                bits: 32
            })
        );
        assert_eq!(
            tm.element_type(tm.fields.get(&("Pool".into(), "counts".into())).unwrap()),
            Some("u64".into())
        );
        assert_eq!(
            tm.method_returns("total"),
            Resolved::Int(IntTy {
                signed: false,
                bits: 64
            })
        );
    }

    #[test]
    fn conflicting_method_returns_are_conflicts() {
        let src = "impl A { fn edge_count(&self) -> usize { 0 } }\nimpl B { fn edge_count(&self) -> u32 { 0 } }\n";
        let (f, code) = flow_of(src);
        let mut tm = TypeMap::default();
        tm.absorb(&code, &f);
        match tm.method_returns("edge_count") {
            Resolved::Conflict(v) => assert_eq!(v.len(), 2),
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn narrowing_matrix() {
        let u = |bits| IntTy {
            signed: false,
            bits,
        };
        let i = |bits| IntTy { signed: true, bits };
        assert!(u(64).narrows_into(u(32)), "usize -> u32");
        assert!(!u(32).narrows_into(u(64)), "u32 -> u64 widens");
        assert!(!u(16).narrows_into(u(64)), "u16 -> usize widens");
        assert!(i(64).narrows_into(u(64)), "i64 -> u64 drops sign");
        assert!(u(64).narrows_into(i(64)), "u64 -> i64 reuses top bit");
        assert!(!u(16).narrows_into(i(32)), "u16 -> i32 is lossless");
        assert!(i(32).narrows_into(i(16)), "i32 -> i16 narrows");
    }

    #[test]
    fn chains_are_extracted_balanced() {
        let line = "        let key = self.node_values[src as usize * na + x].foo();";
        let end = line.find(".foo").unwrap();
        assert_eq!(
            chain_before(line, end),
            "self.node_values[src as usize * na + x]"
        );
        let line2 = "check((a + b) as usize)";
        let end2 = line2.find(" as usize").unwrap();
        assert_eq!(chain_before(line2, end2), "(a + b)");
    }
}
