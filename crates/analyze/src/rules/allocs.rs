//! `alloc-in-arena`: the partition arena and the miner scratch exist so
//! steady-state mining performs **zero** heap allocations (the
//! `arena_alloc.rs` counting-allocator test pins this at runtime). This
//! rule is the static complement: allocation constructors inside the
//! two scratch-owning modules are flagged unless annotated with why the
//! allocation is outside the steady state (construction, warm-up, task
//! detachment, cold fallback).

use crate::diag::Diagnostic;
use crate::walk::FileSet;

/// Rule id.
pub const RULE: &str = "alloc-in-arena";

/// The scratch-owning modules.
pub const ARENA_FILES: &[&str] = &[
    "crates/graph/src/sort.rs",
    "crates/graph/src/shard.rs",
    "crates/core/src/miner.rs",
];

const PATTERNS: &[&str] = &[
    "Vec::new(",
    "vec!",
    ".to_vec()",
    ".collect()",
    ".collect::<",
];

/// Scan the arena/scratch modules.
pub fn run(set: &FileSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rel in ARENA_FILES {
        let Some(f) = set.get(rel) else { continue };
        for (i, code) in f.scan.code.iter().enumerate() {
            if f.scan.in_test[i] || f.allowed(RULE, i) {
                continue;
            }
            for pat in PATTERNS {
                if !super::find_token(code, pat).is_empty() {
                    out.push(Diagnostic::new(
                        RULE,
                        rel,
                        i + 1,
                        format!("`{pat}` in an arena/scratch module (annotate with `// lint: allow({RULE}) — <why this is off the steady-state path>`)"),
                    ));
                    break;
                }
            }
        }
    }
    out
}
