//! `atomic-ordering-audit`: memory orderings are load-bearing proof
//! obligations, not incantations. Every `Ordering::<variant>` use in
//! non-test code must carry an adjacent `// ordering:` comment saying
//! why that variant is sufficient (the model checker in
//! [`crate::model`] backs the two protocols' claims). Independently, a
//! `Relaxed` *store or read-modify-write* is flagged as an error even
//! when justified: everything atomic in this workspace is cross-thread
//! shared state, so a Relaxed publish gives readers no happens-before
//! edge to the data around it — the exact bug class the `SharedBound`
//! audit raised.

use crate::diag::Diagnostic;
use crate::walk::FileSet;

/// Rule id.
pub const RULE: &str = "atomic-ordering-audit";

const VARIANTS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Scan every workspace source.
pub fn run(set: &FileSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &set.files {
        for (i, code) in f.scan.code.iter().enumerate() {
            if f.scan.in_test[i] || f.allowed(RULE, i) {
                continue;
            }
            // `Ordering::X` also matches the `AtomicOrdering::X` alias
            // import style via substring; `std::cmp::Ordering::Less`
            // and friends never match the variant list.
            let Some(variant) = VARIANTS.iter().find(|v| code.contains(**v)) else {
                continue;
            };
            if is_relaxed_publish(code, variant) {
                out.push(Diagnostic::new(
                    RULE,
                    &f.rel,
                    i + 1,
                    "Relaxed store/RMW on cross-thread shared state: publishes give readers no happens-before edge — use Release (or stronger) here",
                ));
                continue;
            }
            if !super::justified(f, i, "ordering:") {
                out.push(Diagnostic::new(
                    RULE,
                    &f.rel,
                    i + 1,
                    format!("`{variant}` without an adjacent `// ordering:` justification"),
                ));
            }
        }
    }
    out
}

/// A Relaxed ordering fed to a store or read-modify-write on this line
/// (loads may be Relaxed with justification; writes may not).
fn is_relaxed_publish(code: &str, variant: &str) -> bool {
    variant.ends_with("Relaxed") && (code.contains(".store(") || code.contains(".fetch_"))
}
