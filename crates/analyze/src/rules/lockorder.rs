//! `lock-order-cycle`: build each function's lock-acquisition graph
//! from the guard hold ranges (acquiring B while holding A is an edge
//! A → B), merge the edges workspace-wide, and report every cycle as a
//! potential deadlock.
//!
//! An intended global order can be declared with a comment of the form
//! `lock-order: A < B < C` (identities as the rule names them, e.g.
//! `Admission.state`); observed edges that contradict a declared order
//! are reported even when no full cycle exists yet, and a declaration
//! naming a lock the analysis never observes is reported as stale.

use super::ctx::Ctx;
use crate::diag::Diagnostic;
use crate::walk::FileSet;
use std::collections::{BTreeMap, BTreeSet};

/// Stable rule id.
pub const RULE: &str = "lock-order-cycle";

struct Declared {
    path: String,
    line: usize, // 1-based
    order: Vec<String>,
}

/// Run the rule over the set.
pub fn run(set: &FileSet, ctx: &Ctx) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Parse `lock-order:` declarations (comment must *start* with the
    // marker so prose about the grammar is not a declaration).
    let mut decls: Vec<Declared> = Vec::new();
    for f in &set.files {
        for (i, comment) in f.scan.comments.iter().enumerate() {
            let text = comment
                .trim()
                .trim_start_matches('/')
                .trim_start_matches('!');
            let Some(rest) = text.trim_start().strip_prefix("lock-order:") else {
                continue;
            };
            if f.allowed(RULE, i) {
                continue;
            }
            let ids: Vec<String> = rest.split('<').map(|s| s.trim().to_string()).collect();
            let well_formed = ids.len() >= 2
                && ids.iter().all(|id| {
                    !id.is_empty()
                        && id.chars().all(|c| {
                            c.is_ascii_alphanumeric()
                                || c == '_'
                                || c == '.'
                                || c == ':'
                                || c == '/'
                        })
                });
            if !well_formed {
                diags.push(Diagnostic::new(
                    RULE,
                    &f.rel,
                    i + 1,
                    "malformed `lock-order:` declaration — expected `lock-order: A < B [< C …]`",
                ));
                continue;
            }
            decls.push(Declared {
                path: f.rel.clone(),
                line: i + 1,
                order: ids,
            });
        }
    }

    // Merge observed edges workspace-wide. An edge exists when lock B is
    // acquired while a guard of lock A (same function) is still live.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    let mut observed: BTreeSet<String> = BTreeSet::new();
    for (f, fc) in set.files.iter().zip(&ctx.files) {
        for h in &fc.holds {
            observed.insert(h.id.clone());
        }
        for a in &fc.holds {
            for b in &fc.holds {
                if a.id == b.id || a.fn_block != b.fn_block {
                    continue;
                }
                let after = b.line > a.line || (b.line == a.line && b.col > a.col);
                if !after || b.line > a.end {
                    continue;
                }
                if f.allowed(RULE, b.line) {
                    continue;
                }
                edges
                    .entry((a.id.clone(), b.id.clone()))
                    .or_insert((f.rel.clone(), b.line + 1));
            }
        }
    }

    // Declarations must talk about locks that exist.
    let mut declared_pairs: BTreeSet<(String, String)> = BTreeSet::new();
    for d in &decls {
        for id in &d.order {
            if !observed.contains(id) {
                diags.push(Diagnostic::new(
                    RULE,
                    &d.path,
                    d.line,
                    format!("`lock-order:` declares `{id}`, but no such lock is ever acquired"),
                ));
            }
        }
        for w in d.order.windows(2) {
            declared_pairs.insert((w[0].clone(), w[1].clone()));
        }
    }

    // Observed edges that contradict the declared order (B must come
    // before A per some declaration chain, but A → B was observed).
    let declared_reach = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from.to_string()];
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            if !seen.insert(cur.clone()) {
                continue;
            }
            for (a, b) in &declared_pairs {
                if *a == cur {
                    stack.push(b.clone());
                }
            }
        }
        false
    };
    for ((a, b), (path, line)) in &edges {
        if declared_reach(b, a) {
            diags.push(Diagnostic::new(
                RULE,
                path,
                *line,
                format!("acquiring `{b}` while holding `{a}` contradicts the declared lock order"),
            ));
        }
    }

    // Cycle detection on the observed graph: for each edge A → B, a
    // path B → … → A closes a cycle. Each cycle (as an id set) is
    // reported once, at its lexicographically first edge site.
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for ((a, b), (path, line)) in &edges {
        let Some(back) = path_between(&edges, b, a) else {
            continue;
        };
        let mut members: BTreeSet<String> = back.iter().cloned().collect();
        members.insert(a.clone());
        members.insert(b.clone());
        if !reported.insert(members) {
            continue;
        }
        let mut cycle = vec![a.clone(), b.clone()];
        cycle.extend(back.into_iter().skip(1));
        diags.push(Diagnostic::new(
            RULE,
            path,
            *line,
            format!(
                "lock-order cycle: {} — potential deadlock",
                cycle.join(" → ")
            ),
        ));
    }

    diags
}

/// BFS path `from → … → to` over the observed edges (inclusive of both
/// endpoints), if one exists.
fn path_between(
    edges: &BTreeMap<(String, String), (String, usize)>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut parents: BTreeMap<String, String> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from.to_string());
    let mut seen: BTreeSet<String> = BTreeSet::new();
    seen.insert(from.to_string());
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            let mut path = vec![cur.clone()];
            let mut c = cur;
            while let Some(p) = parents.get(&c) {
                path.push(p.clone());
                c = p.clone();
            }
            path.reverse();
            return Some(path);
        }
        for (a, b) in edges.keys() {
            if *a == cur && seen.insert(b.clone()) {
                parents.insert(b.clone(), cur.clone());
                queue.push_back(b.clone());
            }
        }
    }
    None
}
