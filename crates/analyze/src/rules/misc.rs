//! Two small hygiene rules: `unsafe-without-safety` (every `unsafe`
//! block or function carries a `// SAFETY:` proof — the workspace is
//! currently 100% safe code, so any new `unsafe` starts justified) and
//! `no-debug-print` (library crates never print; the CLI binaries own
//! stdout, and the one legitimate warning channel is `eprintln!`).

use crate::diag::Diagnostic;
use crate::walk::FileSet;

/// Rule id for `unsafe` without a SAFETY comment.
pub const UNSAFE_RULE: &str = "unsafe-without-safety";
/// Rule id for debug printing in library crates.
pub const PRINT_RULE: &str = "no-debug-print";

const PRINT_PATTERNS: &[&str] = &["dbg!(", "println!(", "print!("];

/// Scan all sources for `unsafe`, library sources for prints.
pub fn run(set: &FileSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &set.files {
        let lib = is_library(&f.rel);
        for (i, code) in f.scan.code.iter().enumerate() {
            if f.scan.in_test[i] {
                continue;
            }
            if has_word(code, "unsafe")
                && !f.allowed(UNSAFE_RULE, i)
                && !super::justified(f, i, "SAFETY:")
            {
                out.push(Diagnostic::new(
                    UNSAFE_RULE,
                    &f.rel,
                    i + 1,
                    "`unsafe` without an adjacent `// SAFETY:` justification",
                ));
            }
            if lib && !f.allowed(PRINT_RULE, i) {
                for pat in PRINT_PATTERNS {
                    if !super::find_token(code, pat).is_empty() {
                        out.push(Diagnostic::new(
                            PRINT_RULE,
                            &f.rel,
                            i + 1,
                            format!("`{pat}` in a library crate (use a return value, a counter, or `eprintln!` for warnings)"),
                        ));
                        break;
                    }
                }
            }
        }
    }
    out
}

/// Library scope: `src/` trees excluding binary roots (`src/bin/`,
/// `main.rs`) — binaries own their stdout.
fn is_library(rel: &str) -> bool {
    (rel.starts_with("src/") || rel.starts_with("crates/"))
        && !rel.contains("/bin/")
        && !rel.ends_with("main.rs")
}

/// Word-boundary match: `pat` not embedded in a longer identifier.
fn has_word(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(p) = code[from..].find(pat) {
        let at = from + p;
        from = at + pat.len();
        let before_ok = !code[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !code[at + pat.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
    }
    false
}
