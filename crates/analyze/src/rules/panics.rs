//! `panic-in-hot-path`: the mining recursion and its substrate must not
//! contain panicking calls. A panic in a worker tears down the whole
//! pool (the engine re-raises it), so every `.unwrap()` / `.expect(` /
//! `panic!` / `unreachable!` in these files is either a latent
//! denial-of-service on degenerate input (PR 5 shipped exactly that) or
//! a provable invariant — and provable invariants carry their proof in
//! a `// lint: allow(panic-in-hot-path) — <proof>` annotation.

use crate::diag::Diagnostic;
use crate::walk::FileSet;

/// Rule id.
pub const RULE: &str = "panic-in-hot-path";

/// The files the rule covers: the counting/partition substrate and the
/// enumeration + parallel engine.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/graph/src/kernel.rs",
    "crates/graph/src/sort.rs",
    "crates/graph/src/shard.rs",
    "crates/core/src/beta.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/miner.rs",
    "crates/core/src/sharded.rs",
];

const PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!(", "unreachable!("];

/// Scan the hot-path files.
pub fn run(set: &FileSet) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rel in HOT_PATH_FILES {
        let Some(f) = set.get(rel) else { continue };
        for (i, code) in f.scan.code.iter().enumerate() {
            if f.scan.in_test[i] || f.allowed(RULE, i) {
                continue;
            }
            for pat in PATTERNS {
                if !super::find_token(code, pat).is_empty() {
                    // `debug_assert!` may expand to panic! but is
                    // compiled out of release; the patterns above are
                    // the always-on ones.
                    out.push(Diagnostic::new(
                        RULE,
                        rel,
                        i + 1,
                        format!("`{pat}` in a hot-path file (annotate with `// lint: allow({RULE}) — <why it cannot fire>` if provably unreachable)"),
                    ));
                    break;
                }
            }
        }
    }
    out
}
