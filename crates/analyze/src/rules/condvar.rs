//! `condvar-discipline`: every `Condvar::wait` must sit inside a
//! predicate loop (`while`/`loop`, never a bare `if` — wakeups are
//! spurious and racy by contract), and every `notify_*` must run while
//! the paired mutex is held, so a waiter cannot check its predicate,
//! lose the race, and sleep through the only wakeup.
//!
//! The pairing is declared next to the condvar with a comment of the
//! form `condvar: <cv> pairs <mutex>`, using the same identities the
//! lock rule resolves (e.g. `condvar: Admission.freed pairs
//! Admission.state`). A condvar field with no declaration is itself a
//! finding; a deliberate unlocked notify can be justified with a
//! `condvar: unlocked — <reason>` comment adjacent to the call.

use super::ctx::{Ctx, Place};
use crate::diag::Diagnostic;
use crate::flow::{self, Pos};
use crate::walk::FileSet;
use std::collections::BTreeMap;

/// Stable rule id.
pub const RULE: &str = "condvar-discipline";

/// Run the rule over the set.
pub fn run(set: &FileSet, ctx: &Ctx) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Pairing declarations: cv identity -> mutex identity.
    let mut pairs: BTreeMap<String, String> = BTreeMap::new();
    for f in &set.files {
        for (i, comment) in f.scan.comments.iter().enumerate() {
            let text = comment
                .trim()
                .trim_start_matches('/')
                .trim_start_matches('!');
            let Some(rest) = text.trim_start().strip_prefix("condvar:") else {
                continue;
            };
            let rest = rest.trim();
            if rest.starts_with("unlocked") {
                continue; // a notify justification, parsed at the call
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[1] != "pairs" {
                if !f.allowed(RULE, i) {
                    diags.push(Diagnostic::new(
                        RULE,
                        &f.rel,
                        i + 1,
                        "malformed `condvar:` declaration — expected `condvar: <cv> pairs <mutex>`",
                    ));
                }
                continue;
            }
            pairs.insert(parts[0].to_string(), parts[2].to_string());
        }
    }

    // Every condvar struct field must be declared.
    for f in &set.files {
        for (i, code) in f.scan.code.iter().enumerate() {
            if f.scan.in_test[i] || f.allowed(RULE, i) {
                continue;
            }
            if !code.contains("Condvar") || code.contains("Condvar::new") {
                continue;
            }
            // Find the declaring struct via the scope tree.
            let fc = file_ctx(set, ctx, &f.rel);
            let col = code.find("Condvar").unwrap_or(0);
            let Some(idx) = fc.flow.block_at(Pos { line: i, col }) else {
                continue;
            };
            let owner = fc.flow.ancestors(idx).find_map(|b| match &b.kind {
                flow::BlockKind::Struct(n) => Some(n.clone()),
                _ => None,
            });
            let Some(owner) = owner else { continue };
            let Some(field) = code
                .split(':')
                .next()
                .and_then(|s| s.split_whitespace().last())
                .map(|s| s.to_string())
            else {
                continue;
            };
            if field.is_empty() || !field.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                continue;
            }
            let id = format!("{owner}.{field}");
            if !pairs.contains_key(&id) {
                diags.push(Diagnostic::new(
                    RULE,
                    &f.rel,
                    i + 1,
                    format!("condvar `{id}` has no `condvar: {id} pairs <mutex>` declaration"),
                ));
            }
        }
    }

    // Wait and notify call sites.
    for (f, fc) in set.files.iter().zip(&ctx.files) {
        for (i, code) in f.scan.code.iter().enumerate() {
            if f.scan.in_test[i] || f.allowed(RULE, i) {
                continue;
            }
            let mut from = 0;
            while let Some(p) = code[from..].find(".wait") {
                let at = from + p;
                from = at + 5;
                let rest = &code[at + 5..];
                let looped_by_construction = rest.starts_with("_while(");
                let is_wait = rest.starts_with('(')
                    || rest.starts_with("_timeout(")
                    || looped_by_construction;
                if !is_wait {
                    continue;
                }
                let recv = receiver_multiline(f, i, at);
                let pos = Pos { line: i, col: at };
                let Some(cv_id) = condvar_identity(fc, f, ctx, pos, &recv) else {
                    continue;
                };
                if !looped_by_construction && !fc.flow.in_loop(pos) {
                    diags.push(Diagnostic::new(
                        RULE,
                        &f.rel,
                        i + 1,
                        format!(
                            "`{cv_id}` waited on outside a predicate loop — wrap the wait in \
                             `while`/`loop` and recheck the predicate"
                        ),
                    ));
                }
                // The guard argument must belong to the declared mutex.
                if let Some(paired) = pairs.get(&cv_id) {
                    let argpos = at + 5 + rest.find('(').unwrap_or(0) + 1;
                    let arg: String = code[argpos..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if !arg.is_empty() {
                        let held = fc.holds.iter().any(|h| {
                            h.name.as_deref() == Some(arg.as_str())
                                && h.line <= i
                                && i <= h.end
                                && h.id == *paired
                        });
                        let known_guard = fc.holds.iter().any(|h| {
                            h.name.as_deref() == Some(arg.as_str()) && h.line <= i && i <= h.end
                        });
                        if known_guard && !held {
                            diags.push(Diagnostic::new(
                                RULE,
                                &f.rel,
                                i + 1,
                                format!(
                                    "`{cv_id}` is declared to pair `{paired}`, but the wait \
                                     passes a guard of a different mutex"
                                ),
                            ));
                        }
                    }
                }
            }
            for pat in [".notify_one(", ".notify_all("] {
                let mut from = 0;
                while let Some(p) = code[from..].find(pat) {
                    let at = from + p;
                    from = at + pat.len();
                    let recv = receiver_multiline(f, i, at);
                    let pos = Pos { line: i, col: at };
                    let Some(cv_id) = condvar_identity(fc, f, ctx, pos, &recv) else {
                        continue;
                    };
                    let Some(paired) = pairs.get(&cv_id) else {
                        continue; // undeclared: already reported at the field
                    };
                    let held = fc
                        .holds
                        .iter()
                        .any(|h| h.id == *paired && h.line <= i && i <= h.end);
                    if !held && !super::justified(f, i, "condvar: unlocked") {
                        diags.push(Diagnostic::new(
                            RULE,
                            &f.rel,
                            i + 1,
                            format!(
                                "`{cv_id}` notified without holding `{paired}` — hold the paired \
                                 mutex or justify with `condvar: unlocked — <reason>`"
                            ),
                        ));
                    }
                }
            }
        }
    }

    diags
}

/// The receiver chain ending at (`line`, `col`), rejoined across a
/// multi-line method chain (`self␤.freed␤.wait_timeout(…)`).
fn receiver_multiline(f: &crate::walk::SourceFile, line: usize, col: usize) -> String {
    let mut acc = f.scan.code[line][..col].trim().to_string();
    let mut l = line;
    while acc.starts_with('.') && l > 0 {
        l -= 1;
        let above = f.scan.code[l].trim();
        if above.is_empty() || above.ends_with([';', '{', '}']) {
            break;
        }
        acc = format!("{above}{acc}");
    }
    flow::chain_before(&acc, acc.len())
}

fn file_ctx<'c>(set: &FileSet, ctx: &'c Ctx, rel: &str) -> &'c super::ctx::FileCtx {
    let idx = set.files.iter().position(|f| f.rel == rel).unwrap_or(0);
    &ctx.files[idx]
}

/// Resolve a receiver chain to a condvar identity, if it is one.
fn condvar_identity(
    fc: &super::ctx::FileCtx,
    f: &crate::walk::SourceFile,
    ctx: &Ctx,
    pos: Pos,
    recv: &str,
) -> Option<String> {
    match fc.resolve_place(f, &ctx.types, pos, recv) {
        Place::Field { owner, field, ty } if ty.contains("Condvar") => {
            Some(format!("{owner}.{field}"))
        }
        Place::Local { func, name, ty } if ty.as_deref() == Some("Condvar") => {
            Some(format!("{}:{func}:{name}", f.rel))
        }
        _ => None,
    }
}
