//! `counter-schema-drift`: a `MinerStats` counter is only real if it
//! flows through all four surfaces — `merge()` (or parallel runs lose
//! it: the PR 4 bug class), `semantic()` (or the equivalence matrices
//! silently stop covering it), `Display` (or it's invisible in logs),
//! and the pinned `--stats-json` schema test (or the CLI contract
//! drifts). The rule parses the struct's field list and cross-checks
//! each surface, so adding a counter without deciding all four is a
//! build failure, not a code-review hope. `semantic()` must also stay
//! exhaustive (no `..` struct-update), otherwise the per-field check
//! can't see omissions.

use crate::diag::Diagnostic;
use crate::walk::FileSet;

/// Rule id.
pub const RULE: &str = "counter-schema-drift";

/// Where the counters live and where the CLI schema is pinned.
pub const STATS_FILE: &str = "crates/core/src/stats.rs";
const SCHEMA_PIN_FILE: &str = "tests/cli_and_parse.rs";

/// Cross-check the stats surfaces.
pub fn run(set: &FileSet) -> Vec<Diagnostic> {
    let Some(f) = set.get(STATS_FILE) else {
        return Vec::new(); // tree without the miner: nothing to check
    };
    let code = &f.scan.code;
    let mut out = Vec::new();

    let Some(struct_span) = item_span(code, "struct MinerStats") else {
        out.push(Diagnostic::new(
            RULE,
            STATS_FILE,
            0,
            "cannot find `struct MinerStats`",
        ));
        return out;
    };
    let fields = field_list(code, struct_span);

    type FieldPresent = fn(&str, &str) -> bool;
    let surfaces: &[(&str, &str, FieldPresent)] = &[
        ("fn merge", "merge()", |body, field| {
            body.contains(&format!("other.{field}"))
        }),
        ("fn semantic", "semantic()", |body, field| {
            body.contains(&format!("{field}:"))
        }),
        ("Display for MinerStats", "Display", |body, field| {
            body.contains(&format!("self.{field}"))
        }),
    ];
    for (needle, label, present) in surfaces {
        let Some(span) = item_span(code, needle) else {
            out.push(Diagnostic::new(
                RULE,
                STATS_FILE,
                0,
                format!("cannot find `{needle}` to cross-check"),
            ));
            continue;
        };
        let body = code[span.0..=span.1].join("\n");
        if *label == "semantic()" && body.contains("..self") {
            out.push(Diagnostic::new(
                RULE,
                STATS_FILE,
                span.0 + 1,
                "semantic() uses `..` struct-update syntax — it must list every field explicitly so new counters force a classification",
            ));
        }
        for (field, decl_line) in &fields {
            if !present(&body, field) {
                out.push(Diagnostic::new(
                    RULE,
                    STATS_FILE,
                    *decl_line + 1,
                    format!("counter `{field}` is missing from {label}"),
                ));
            }
        }
    }

    match set.read_raw(SCHEMA_PIN_FILE) {
        Some(pin) => {
            for (field, decl_line) in &fields {
                if !pin.contains(&format!("\"{field}\"")) {
                    out.push(Diagnostic::new(
                        RULE,
                        STATS_FILE,
                        *decl_line + 1,
                        format!("counter `{field}` is missing from the pinned --stats-json schema in {SCHEMA_PIN_FILE}"),
                    ));
                }
            }
        }
        None => out.push(Diagnostic::new(
            RULE,
            SCHEMA_PIN_FILE,
            0,
            "schema-pin test file not found",
        )),
    }
    out
}

/// `(field name, 0-based declaration line)` for every `pub` field in the
/// struct span.
fn field_list(code: &[String], span: (usize, usize)) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, line) in code.iter().enumerate().take(span.1 + 1).skip(span.0) {
        let t = line.trim();
        if t.starts_with('#') || t.contains("struct ") {
            continue;
        }
        if let Some(rest) = t.strip_prefix("pub ") {
            if let Some(colon) = rest.find(':') {
                let name = rest[..colon].trim();
                if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    out.push((name.to_string(), i));
                }
            }
        }
    }
    out
}

/// 0-based inclusive line span of the `{}`-body item whose header
/// contains `needle`.
fn item_span(code: &[String], needle: &str) -> Option<(usize, usize)> {
    let joined = code.join("\n");
    let at = joined.find(needle)?;
    let open = at + joined[at..].find('{')?;
    let mut depth = 0usize;
    for (off, c) in joined[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    let start = joined[..at].matches('\n').count();
                    let end = joined[..open + off].matches('\n').count();
                    return Some((start, end));
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_list_reads_pub_fields_only() {
        let code: Vec<String> = [
            "pub struct MinerStats {",
            "    #[serde(skip)]",
            "    pub a: u64,",
            "    hidden: u64,",
            "    pub elapsed: Duration,",
            "}",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let span = item_span(&code, "struct MinerStats").unwrap();
        let fields = field_list(&code, span);
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "elapsed"]);
    }
}
