//! Shared flow context for the flow-aware rules: the workspace
//! [`TypeMap`], each file's scope tree, a per-file local-binding
//! environment, and the guard *hold ranges* of every `Mutex`/`RwLock`
//! acquisition. Built once per [`run_all`](super::run_all) and consumed
//! by the lock-order, condvar and cast rules so they agree on what a
//! lock is called.

use crate::flow::{self, BlockKind, Flow, Pos, Resolved, TypeMap};
use crate::walk::{FileSet, SourceFile};

/// One parsed postfix segment of an expression chain.
#[derive(Debug, PartialEq, Eq)]
pub enum Seg {
    /// `.name`
    Field(String),
    /// `.name(…)`
    Method(String),
    /// `[…]`
    Index,
    /// `::name`
    PathConst(String),
    /// `::name(…)`
    PathCall(String),
}

/// A chain split into its head identifier and postfix segments.
#[derive(Debug)]
pub struct Chain {
    /// Leading identifier (`self`, a local, a type name) or a numeric
    /// literal text.
    pub head: String,
    /// Postfix navigation, left to right.
    pub segs: Vec<Seg>,
}

/// Parse `self.adm.state`, `counts[k]`, `u32::MAX`, `store.edge_count(s)`
/// into head + segments. Returns `None` for shapes the resolver does not
/// model (leading parens are handled by the cast rule before calling).
pub fn parse_chain(chain: &str) -> Option<Chain> {
    let bytes = chain.as_bytes();
    let mut i = 0;
    while i < bytes.len() && (bytes[i] == b'&' || bytes[i] == b' ' || bytes[i] == b'*') {
        i += 1;
    }
    let start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    if i == start {
        return None;
    }
    let head = chain[start..i].to_string();
    let mut segs = Vec::new();
    while i < bytes.len() {
        match bytes[i] {
            b'.' => {
                i += 1;
                let s = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == s {
                    return None;
                }
                let name = chain[s..i].to_string();
                if bytes.get(i) == Some(&b'(') {
                    i = skip_group(bytes, i)?;
                    segs.push(Seg::Method(name));
                } else {
                    segs.push(Seg::Field(name));
                }
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                i += 2;
                if bytes.get(i) == Some(&b'<') {
                    i = skip_group(bytes, i)?; // turbofish
                    continue;
                }
                let s = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == s {
                    return None;
                }
                let name = chain[s..i].to_string();
                if bytes.get(i) == Some(&b'(') {
                    i = skip_group(bytes, i)?;
                    segs.push(Seg::PathCall(name));
                } else {
                    segs.push(Seg::PathConst(name));
                }
            }
            b'[' => {
                i = skip_group(bytes, i)?;
                segs.push(Seg::Index);
            }
            b' ' => i += 1,
            _ => return None,
        }
    }
    Some(Chain { head, segs })
}

fn skip_group(bytes: &[u8], open: usize) -> Option<usize> {
    let close = match bytes[open] {
        b'(' => b')',
        b'[' => b']',
        b'<' => b'>',
        _ => return None,
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < bytes.len() {
        if bytes[i] == bytes[open] {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

/// A local binding (or parameter) with a known type text.
struct LocalDecl {
    line: usize,
    fn_block: Option<usize>,
    name: String,
    ty: String,
}

/// One guard hold range: a lock acquired on `line`, live through `end`.
pub struct Hold {
    /// Resolved lock identity (see [`FileCtx::lock_identity`]).
    pub id: String,
    /// Guard binding name, if let-bound.
    pub name: Option<String>,
    /// 0-based acquisition line.
    pub line: usize,
    /// Byte column of the acquisition on that line.
    pub col: usize,
    /// 0-based last line the guard is live on (inclusive).
    pub end: usize,
    /// Scope-tree index of the enclosing fn body, if any.
    pub fn_block: Option<usize>,
}

/// Per-file flow context.
pub struct FileCtx {
    /// Scope tree.
    pub flow: Flow,
    /// Guard hold ranges, in acquisition order.
    pub holds: Vec<Hold>,
    locals: Vec<LocalDecl>,
}

/// The workspace flow context, file-parallel with `FileSet::files`.
pub struct Ctx {
    /// Nominal type information for the whole collected set.
    pub types: TypeMap,
    /// Per-file contexts, same order as `set.files`.
    pub files: Vec<FileCtx>,
}

impl Ctx {
    /// Build the context: one pass for types, one for locals and holds.
    pub fn build(set: &FileSet) -> Ctx {
        let mut types = TypeMap::default();
        let flows: Vec<Flow> = set
            .files
            .iter()
            .map(|f| {
                let flow = Flow::new(&f.scan.code);
                types.absorb(&f.scan.code, &flow);
                flow
            })
            .collect();
        let mut files = Vec::new();
        for (f, flow) in set.files.iter().zip(flows) {
            let locals = collect_locals(f, &flow, &types);
            let mut fc = FileCtx {
                flow,
                holds: Vec::new(),
                locals,
            };
            fc.holds = collect_holds(f, &fc, &types);
            files.push(fc);
        }
        Ctx { types, files }
    }
}

/// Where a resolved place lives.
pub enum Place {
    /// A field of a named struct: the workspace-stable way to name a
    /// lock (`Admission.state`) or condvar (`Admission.freed`).
    Field {
        /// Owning type name.
        owner: String,
        /// Field name.
        field: String,
        /// Declared field type text.
        ty: String,
    },
    /// A function-local binding.
    Local {
        /// Enclosing function name.
        func: String,
        /// Binding name.
        name: String,
        /// Declared/inferred type text, if known.
        ty: Option<String>,
    },
    /// Unresolvable: identity falls back to the raw chain text,
    /// function-qualified so distinct call sites never alias distinct
    /// locks into a false cycle.
    Opaque(String),
}

impl FileCtx {
    fn fn_name_at(&self, pos: Pos) -> String {
        match self.flow.enclosing_fn(pos).map(|b| &b.kind) {
            Some(BlockKind::Fn(n)) => n.clone(),
            _ => "<top>".to_string(),
        }
    }

    fn local_type(&self, pos: Pos, name: &str) -> Option<&str> {
        let fn_block = self
            .flow
            .block_at(pos)
            .and_then(|i| self.enclosing_fn_idx(i));
        let mut best: Option<&LocalDecl> = None;
        for d in &self.locals {
            if d.name == name && d.line <= pos.line && d.fn_block == fn_block {
                best = Some(d);
            }
        }
        best.map(|d| d.ty.as_str())
    }

    fn enclosing_fn_idx(&self, mut idx: usize) -> Option<usize> {
        loop {
            if matches!(self.flow.blocks[idx].kind, BlockKind::Fn(_)) {
                return Some(idx);
            }
            idx = self.flow.blocks[idx].parent?;
        }
    }

    /// Resolve an expression chain at `pos` to a place, navigating
    /// `self` → impl type and fields through the struct map.
    pub fn resolve_place(&self, f: &SourceFile, types: &TypeMap, pos: Pos, chain: &str) -> Place {
        let func = self.fn_name_at(pos);
        let opaque = |c: &str| Place::Opaque(format!("{}:{}:{}", f.rel, func, c));
        let Some(parsed) = parse_chain(chain) else {
            return opaque(chain);
        };
        // Head: `self`, a typed local, or give up.
        let mut carrier: String;
        if parsed.head == "self" {
            match self.flow.enclosing_impl(pos) {
                Some(t) => carrier = t.to_string(),
                None => return opaque(chain),
            }
        } else if let Some(ty) = self.local_type(pos, &parsed.head) {
            if parsed.segs.is_empty() {
                return Place::Local {
                    func,
                    name: parsed.head,
                    ty: Some(ty.to_string()),
                };
            }
            carrier = ty.to_string();
        } else if parsed.segs.is_empty() {
            return Place::Local {
                func,
                name: parsed.head,
                ty: None,
            };
        } else {
            return opaque(chain);
        }
        // Navigate fields; anything else ends the walk.
        let mut owner = flow::strip_type(&carrier);
        for (i, seg) in parsed.segs.iter().enumerate() {
            match seg {
                Seg::Field(name) => {
                    let Some(ty) = types.fields.get(&(owner.clone(), name.clone())) else {
                        return opaque(chain);
                    };
                    if i + 1 == parsed.segs.len() {
                        return Place::Field {
                            owner,
                            field: name.clone(),
                            ty: ty.clone(),
                        };
                    }
                    carrier = ty.clone();
                    owner = flow::strip_type(&carrier);
                }
                _ => return opaque(chain),
            }
        }
        opaque(chain)
    }

    /// The workspace-stable identity string for a lock expression.
    pub fn lock_identity(&self, f: &SourceFile, types: &TypeMap, pos: Pos, chain: &str) -> String {
        match self.resolve_place(f, types, pos, chain) {
            Place::Field { owner, field, .. } => format!("{owner}.{field}"),
            Place::Local { func, name, .. } => format!("{}:{func}:{name}", f.rel),
            Place::Opaque(s) => s,
        }
    }

    /// Resolve the integer type of a cast-source chain at `pos`.
    pub fn resolve_int(&self, types: &TypeMap, pos: Pos, chain: &str) -> Resolved {
        // Ranges: `0..n as u32` casts only the right operand.
        let chain = match chain.rfind("..") {
            Some(p) => chain[p + 2..].trim(),
            None => chain.trim(),
        };
        if chain.is_empty() {
            return Resolved::Unknown;
        }
        // Parenthesized compound: every integer operand must agree.
        if chain.starts_with('(') && chain.ends_with(')') {
            return self.resolve_compound(types, pos, &chain[1..chain.len() - 1]);
        }
        if chain.as_bytes()[0].is_ascii_digit() {
            return resolve_literal(chain);
        }
        let Some(parsed) = parse_chain(chain) else {
            return Resolved::Unknown;
        };
        // `u32::MAX`, `AttrValue::BITS`, `u64::from(x)`.
        if let Resolved::Int(head_ty) = types.classify(&parsed.head) {
            return match parsed.segs.first() {
                Some(Seg::PathConst(c)) if c == "BITS" => Resolved::Int(flow::IntTy {
                    signed: false,
                    bits: 32,
                }),
                Some(Seg::PathConst(c)) if c == "MAX" || c == "MIN" => Resolved::Int(head_ty),
                Some(Seg::PathCall(c)) if c == "from" || c == "try_from" => Resolved::Int(head_ty),
                None => Resolved::Unknown, // a bare type name is not a value
                _ => Resolved::Unknown,
            };
        }
        let mut carrier: Option<String> = if parsed.head == "self" {
            self.flow.enclosing_impl(pos).map(str::to_string)
        } else {
            self.local_type(pos, &parsed.head).map(str::to_string)
        };
        if parsed.segs.is_empty() {
            return match carrier {
                Some(ty) => types.classify(&ty),
                None => Resolved::Unknown,
            };
        }
        for (i, seg) in parsed.segs.iter().enumerate() {
            let last = i + 1 == parsed.segs.len();
            match seg {
                Seg::Field(name) => {
                    let owner = flow::strip_type(carrier.as_deref().unwrap_or(""));
                    carrier = types.fields.get(&(owner, name.clone())).cloned();
                    if carrier.is_none() {
                        return Resolved::Unknown;
                    }
                }
                Seg::Method(name) | Seg::PathCall(name) => match types.method_returns(name) {
                    Resolved::Int(t) => carrier = Some(int_name(t)),
                    Resolved::Conflict(v) if last => return Resolved::Conflict(v),
                    _ => return Resolved::Unknown,
                },
                Seg::Index => {
                    carrier = carrier.and_then(|c| types.element_type(&c));
                    if carrier.is_none() {
                        return Resolved::Unknown;
                    }
                }
                Seg::PathConst(_) => return Resolved::Unknown,
            }
        }
        match carrier {
            Some(ty) => types.classify(&ty),
            None => Resolved::Unknown,
        }
    }

    fn resolve_compound(&self, types: &TypeMap, pos: Pos, inner: &str) -> Resolved {
        // Shifts: the value type is the left operand's.
        let inner = inner
            .split("<<")
            .next()
            .unwrap_or(inner)
            .split(">>")
            .next()
            .unwrap_or(inner);
        let mut found: Option<flow::IntTy> = None;
        let mut depth = 0i32;
        let mut start = 0;
        let bytes = inner.as_bytes();
        let mut operands = Vec::new();
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'(' | b'[' | b'<' => depth += 1,
                b')' | b']' | b'>' => depth -= 1,
                b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^' if depth == 0 => {
                    operands.push(&inner[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        operands.push(&inner[start..]);
        for op in operands {
            let op = op.trim();
            if op.is_empty() || op.as_bytes()[0].is_ascii_digit() {
                continue; // literal operands adopt the other side's type
            }
            match self.resolve_int(types, pos, op) {
                Resolved::Int(t) => match found {
                    None => found = Some(t),
                    Some(prev) if prev == t => {}
                    Some(_) => return Resolved::Unknown,
                },
                Resolved::NonInt => return Resolved::NonInt,
                _ => return Resolved::Unknown,
            }
        }
        match found {
            Some(t) => Resolved::Int(t),
            None => Resolved::Unknown,
        }
    }
}

fn int_name(t: flow::IntTy) -> String {
    format!("{}{}", if t.signed { 'i' } else { 'u' }, t.bits)
}

fn resolve_literal(text: &str) -> Resolved {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let (radix, body) = if let Some(r) = t.strip_prefix("0x") {
        (16, r)
    } else if let Some(r) = t.strip_prefix("0b") {
        (2, r)
    } else {
        (10, t.as_str())
    };
    // Strip a trailing `u32`-style type suffix, if present.
    let mut digits = body;
    for (i, _) in body.char_indices() {
        if flow::IntTy::parse(&body[i..]).is_some() {
            digits = &body[..i];
            break;
        }
    }
    match u128::from_str_radix(digits, radix) {
        Ok(v) => Resolved::Literal(v),
        Err(_) => Resolved::Unknown,
    }
}

/// Collect `let` bindings with recoverable types plus fn parameters.
fn collect_locals(f: &SourceFile, flow_tree: &Flow, types: &TypeMap) -> Vec<LocalDecl> {
    let mut out = Vec::new();
    // Parameters: attach to the fn body block.
    let joined = f.scan.code.join("\n");
    let line_starts: Vec<usize> = {
        let mut v = vec![0usize];
        for (i, b) in joined.bytes().enumerate() {
            if b == b'\n' {
                v.push(i + 1);
            }
        }
        v
    };
    for sig in flow::fn_signatures(&joined) {
        let line = match line_starts.binary_search(&sig.offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        // The body block is the first Fn block opening at/after the
        // signature with this name.
        let fn_block = flow_tree.blocks.iter().position(|b| {
            matches!(&b.kind, BlockKind::Fn(n) if *n == sig.name) && b.open.line >= line
        });
        for (name, ty) in flow::split_params(&sig.params) {
            out.push(LocalDecl {
                line,
                fn_block,
                name,
                ty,
            });
        }
    }
    // `let name[: T] = …;` bindings.
    for (line, code) in f.scan.code.iter().enumerate() {
        for at in super::find_token(code, "let ") {
            let rest = &code[at + 4..];
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name_end = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            let name = &rest[..name_end];
            if name.is_empty() || name == "_" {
                continue;
            }
            let after = rest[name_end..].trim_start();
            let ty = if let Some(t) = after.strip_prefix(':') {
                let end = t.find('=').unwrap_or(t.len());
                Some(t[..end].trim().to_string())
            } else if let Some(rhs) = after.strip_prefix('=') {
                infer_rhs_type(rhs.trim(), types)
            } else {
                None
            };
            let Some(ty) = ty else { continue };
            if ty.is_empty() {
                continue;
            }
            let pos = Pos { line, col: at };
            let fn_block = flow_tree.block_at(pos).and_then(|mut idx| loop {
                if matches!(flow_tree.blocks[idx].kind, BlockKind::Fn(_)) {
                    break Some(idx);
                }
                match flow_tree.blocks[idx].parent {
                    Some(p) => idx = p,
                    None => break None,
                }
            });
            out.push(LocalDecl {
                line,
                fn_block,
                name: name.to_string(),
                ty,
            });
        }
    }
    out.sort_by_key(|d| d.line);
    out
}

/// Recover a type from simple initializer shapes.
fn infer_rhs_type(rhs: &str, types: &TypeMap) -> Option<String> {
    for (pat, ty) in [
        ("Mutex::new(", "Mutex<_>"),
        ("RwLock::new(", "RwLock<_>"),
        ("Condvar::new(", "Condvar"),
    ] {
        if rhs.starts_with(pat) || rhs.contains(pat) {
            return Some(ty.to_string());
        }
    }
    // `… as T;` pins the binding's type.
    if let Some(p) = rhs.rfind(" as ") {
        let t = rhs[p + 4..]
            .trim()
            .trim_end_matches(';')
            .trim_end_matches(',')
            .trim();
        if !t.is_empty()
            && t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && matches!(types.classify(t), Resolved::Int(_))
        {
            return Some(t.to_string());
        }
    }
    // `Type::new(…)` / `Type::with_capacity(…)` construction.
    let name_end = rhs
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(0);
    if name_end > 0 && rhs[name_end..].starts_with("::") {
        let head = &rhs[..name_end];
        if head.chars().next().is_some_and(|c| c.is_ascii_uppercase()) && head != "Vec" {
            return Some(head.to_string());
        }
    }
    None
}

/// Detect lock acquisitions and compute guard hold ranges.
fn collect_holds(f: &SourceFile, fc: &FileCtx, types: &TypeMap) -> Vec<Hold> {
    let mut out = Vec::new();
    let n = f.scan.code.len();
    for line in 0..n {
        if f.scan.in_test[line] {
            continue;
        }
        let code = f.scan.code[line].clone();
        let mut sites: Vec<(usize, String)> = Vec::new();
        // Free `lock(expr)` helper calls (the poison-robust wrapper in
        // service.rs) — not method calls, not `fn lock(` definitions.
        for at in super::find_token(&code, "lock(") {
            if code[..at].ends_with('.') || code[..at].trim_end().ends_with("fn") {
                continue;
            }
            let Some(close) = skip_group(code.as_bytes(), at + 4) else {
                continue;
            };
            let arg = code[at + 5..close - 1].trim().trim_start_matches('&');
            sites.push((at, arg.to_string()));
        }
        // `expr.lock()`, and empty-argument `.read()` / `.write()`
        // (argument-taking read/write are io traits, not RwLock).
        for pat in [".lock()", ".read()", ".write()"] {
            let mut from = 0;
            while let Some(p) = code[from..].find(pat) {
                let at = from + p;
                from = at + pat.len();
                let recv = flow::receiver_before(&code, at);
                if recv.is_empty() {
                    continue;
                }
                sites.push((at, recv));
            }
        }
        sites.sort_by_key(|s| s.0);
        for (col, expr) in sites {
            let pos = Pos { line, col };
            let id = fc.lock_identity(f, types, pos, &expr);
            let fn_block = fc.flow.block_at(pos).and_then(|i| fc.enclosing_fn_idx(i));
            let (name, end) = hold_range(f, fc, line, col);
            out.push(Hold {
                id,
                name,
                line,
                col,
                end,
                fn_block,
            });
        }
    }
    out
}

/// Binding name and inclusive end line of a guard acquired at
/// (`line`, `col`).
fn hold_range(f: &SourceFile, fc: &FileCtx, line: usize, col: usize) -> (Option<String>, usize) {
    let code = &f.scan.code[line];
    let pos = Pos { line, col };
    // A block opening on this line after the acquisition keeps `match`
    // scrutinee and `if let`/`while let` temporaries alive to its close.
    let trailing_block = fc
        .flow
        .blocks
        .iter()
        .find(|b| b.open.line == line && b.open.col > col);
    let let_at = super::find_token(code, "let ")
        .into_iter()
        .find(|&a| a < col && code[a..col].contains('='));
    if let Some(a) = let_at {
        let eq = a + code[a..col].find('=').unwrap_or(0);
        let pat = &code[a + 4..eq];
        let name = pat
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .filter(|t| !t.is_empty())
            .find(|t| !matches!(*t, "mut" | "Ok" | "Some" | "Err" | "None" | "ref"))
            .map(str::to_string);
        let scope_end = match trailing_block {
            // `if let Ok(g) = m.lock() {` — guard scoped to that block.
            Some(b) => b.close.line,
            // Plain `let`: to the enclosing block's close.
            None => fc
                .flow
                .block_at(pos)
                .map(|i| fc.flow.blocks[i].close.line)
                .unwrap_or(f.scan.code.len().saturating_sub(1)),
        };
        // Early `drop(guard)` truncates the hold.
        let mut end = scope_end;
        if let Some(gname) = &name {
            for l in line..=scope_end.min(f.scan.code.len() - 1) {
                let c = &f.scan.code[l];
                if super::find_token(c, "drop(")
                    .iter()
                    .any(|&d| c[d + 5..].trim_start().starts_with(gname.as_str()))
                {
                    end = l;
                    break;
                }
            }
        }
        return (name, end);
    }
    // Statement temporary.
    match trailing_block {
        Some(b) if matches!(b.kind, BlockKind::Match) => (None, b.close.line),
        Some(b) if matches!(b.kind, BlockKind::If | BlockKind::While) => {
            // Condition temporaries die before the block body runs.
            (None, line)
        }
        Some(b) => (None, b.close.line),
        None => {
            // To the end of the statement (multi-line chains included).
            let cap = fc
                .flow
                .block_at(pos)
                .map(|i| fc.flow.blocks[i].close.line)
                .unwrap_or(f.scan.code.len() - 1);
            let mut end = line;
            while end < cap && !f.scan.code[end].trim_end().ends_with(';') {
                end += 1;
            }
            (None, end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_of(src: &str) -> (crate::walk::FileSet, Ctx) {
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_string());
        let set = FileSet {
            root: std::path::PathBuf::from("."),
            files: vec![f],
        };
        let ctx = Ctx::build(&set);
        (set, ctx)
    }

    #[test]
    fn nested_guard_holds_produce_overlap() {
        let src = "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        let g1 = self.a.lock();\n        let g2 = self.b.lock();\n        drop(g2);\n    }\n}\n";
        let (_, ctx) = ctx_of(src);
        let holds = &ctx.files[0].holds;
        assert_eq!(holds.len(), 2);
        assert_eq!(holds[0].id, "S.a");
        assert_eq!(holds[1].id, "S.b");
        assert_eq!(holds[0].name.as_deref(), Some("g1"));
        assert_eq!(holds[0].end, 6, "to the fn block close");
        assert_eq!(holds[1].end, 5, "early drop truncates the hold");
    }

    #[test]
    fn match_bound_guard_spans_the_match() {
        let src = "struct S { a: Mutex<u32> }\nimpl S {\n    fn f(&self) {\n        match self.a.lock() {\n            Ok(_) => {}\n            Err(_) => {}\n        }\n        self.a.lock();\n    }\n}\n";
        let (_, ctx) = ctx_of(src);
        let holds = &ctx.files[0].holds;
        assert_eq!(holds.len(), 2);
        assert_eq!(holds[0].end, 6, "match scrutinee lives to the match close");
        assert_eq!(holds[1].end, 7, "statement temporary dies on its line");
    }

    #[test]
    fn free_lock_helper_and_field_navigation() {
        let src = "struct Admission { state: Mutex<u32>, freed: Condvar }\nstruct Guard { adm: Admission }\nimpl Guard {\n    fn f(&self) {\n        let st = lock(&self.adm.state);\n        let _ = st;\n    }\n}\n";
        let (_, ctx) = ctx_of(src);
        let holds = &ctx.files[0].holds;
        assert_eq!(holds.len(), 1);
        assert_eq!(holds[0].id, "Admission.state");
    }

    #[test]
    fn local_locks_are_function_qualified() {
        let src =
            "fn f() {\n    let m = Mutex::new(0);\n    let g = m.lock();\n    let _ = g;\n}\n";
        let (_, ctx) = ctx_of(src);
        assert_eq!(ctx.files[0].holds[0].id, "crates/x/src/lib.rs:f:m");
    }

    #[test]
    fn cast_sources_resolve_through_fields_methods_and_indexing() {
        let src = "pub type AttrValue = u16;\nstruct R { start: u32, vals: Vec<u64> }\nimpl R {\n    fn count(&self) -> usize { 0 }\n    fn f(&self, ks: &[AttrValue]) {\n        let a = self.start;\n        let b = self.vals[0];\n        let c = ks[1];\n        let d = self.count();\n        let _ = (a, b, c, d);\n    }\n}\n";
        let (set, ctx) = ctx_of(src);
        let fc = &ctx.files[0];
        let _ = &set;
        let at = |l| Pos { line: l, col: 8 };
        let int = |s, b| Resolved::Int(flow::IntTy { signed: s, bits: b });
        assert_eq!(
            fc.resolve_int(&ctx.types, at(5), "self.start"),
            int(false, 32)
        );
        assert_eq!(
            fc.resolve_int(&ctx.types, at(6), "self.vals[0]"),
            int(false, 64)
        );
        assert_eq!(fc.resolve_int(&ctx.types, at(7), "ks[1]"), int(false, 16));
        assert_eq!(
            fc.resolve_int(&ctx.types, at(8), "self.count()"),
            int(false, 64)
        );
        assert_eq!(
            fc.resolve_int(&ctx.types, at(8), "(self.start + 4)"),
            int(false, 32)
        );
        assert_eq!(
            fc.resolve_int(&ctx.types, at(8), "u32::MAX"),
            int(false, 32)
        );
        assert_eq!(
            fc.resolve_int(&ctx.types, at(8), "AttrValue::BITS"),
            int(false, 32)
        );
        assert_eq!(
            fc.resolve_int(&ctx.types, at(8), "0xFFFF"),
            Resolved::Literal(65535)
        );
    }
}
