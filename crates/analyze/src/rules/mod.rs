//! The repo-specific rule set.
//!
//! Every rule consumes the pre-scanned [`FileSet`] (comments and literal
//! bodies already blanked, test regions marked, allow annotations
//! parsed) and emits [`Diagnostic`]s. A finding is suppressed by a
//! `// lint: allow(<rule-id>) — <reason>` annotation covering its line;
//! the reason is mandatory — an allow without one is itself reported.

use crate::diag::{self, Diagnostic};
use crate::walk::FileSet;

pub mod allocs;
pub mod atomics;
pub mod casts;
pub mod condvar;
pub mod counters;
pub mod ctx;
pub mod linkage;
pub mod lockorder;
pub mod misc;
pub mod panics;
pub mod vendor;

/// Stable rule ids and one-line descriptions, for `grm-analyze rules`.
pub const RULES: &[(&str, &str)] = &[
    (
        panics::RULE,
        "no .unwrap()/.expect(/panic!/unreachable! in the mining hot-path files",
    ),
    (
        atomics::RULE,
        "every atomic Ordering use needs an adjacent `// ordering:` justification; Relaxed stores/RMWs are publish-path errors",
    ),
    (
        counters::RULE,
        "MinerStats fields must appear in merge(), semantic(), Display and the pinned --stats-json schema",
    ),
    (
        allocs::RULE,
        "no Vec::new/vec!/to_vec/.collect() in the PartitionArena / MinerScratch modules",
    ),
    (
        misc::UNSAFE_RULE,
        "every `unsafe` needs an adjacent `// SAFETY:` comment",
    ),
    (
        misc::PRINT_RULE,
        "no dbg!/println!/print! in library crates",
    ),
    (
        vendor::RULE,
        "vendor stub public API surface must match what the workspace imports",
    ),
    (
        lockorder::RULE,
        "the workspace-merged lock-acquisition graph must be acyclic and match declared `lock-order:` annotations",
    ),
    (
        condvar::RULE,
        "Condvar waits must be predicate-looped and notifies must hold the declared paired mutex",
    ),
    (
        casts::RULE,
        "narrowing `as` casts in hot-path files need `try_into` or a `cast:` bound proof",
    ),
    (
        linkage::RULE,
        "model citations in proofs must resolve; every model module must be in full_suite() and run by CI",
    ),
];

/// Run every rule over the set and return the sorted findings.
pub fn run_all(set: &FileSet) -> Vec<Diagnostic> {
    let ctx = ctx::Ctx::build(set);
    let mut diags = Vec::new();
    for f in &set.files {
        diags.extend(f.annotation_errors.iter().cloned());
    }
    diags.extend(panics::run(set));
    diags.extend(atomics::run(set));
    diags.extend(counters::run(set));
    diags.extend(allocs::run(set));
    diags.extend(misc::run(set));
    diags.extend(vendor::run(set));
    diags.extend(lockorder::run(set, &ctx));
    diags.extend(condvar::run(set, &ctx));
    diags.extend(casts::run(set, &ctx));
    diags.extend(linkage::run(set));
    diag::sort(&mut diags);
    diags
}

/// Positions in `line` where `pat` occurs as a call-ish token: the char
/// before the match must not be part of an identifier (so `eprintln!(`
/// never matches `println!(`, and `unwrap_or()` never matches
/// `.unwrap()` — the latter already by the closing paren in the
/// pattern).
pub(crate) fn find_token(line: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = line[from..].find(pat) {
        let at = from + p;
        from = at + pat.len();
        let before = line[..at].chars().next_back();
        if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        out.push(at);
    }
    out
}

/// Whether a justification marker (e.g. `ordering:` / `SAFETY:`) is
/// adjacent to 0-based `line`: in the trailing comment on the line
/// itself, or in the contiguous run of comment-only lines directly
/// above it.
pub(crate) fn justified(f: &crate::walk::SourceFile, line: usize, marker: &str) -> bool {
    if f.scan.comments[line].contains(marker) {
        return true;
    }
    // Walk up to the first line of the enclosing statement (a multi-line
    // method chain keeps its justification above the statement, not
    // above the line the Ordering token happens to land on)...
    let mut start = line;
    while start > 0 {
        let above = f.scan.code[start - 1].trim_end();
        let continues = !above.is_empty()
            && !above.ends_with([';', '{', '}'])
            && !above.trim_start().starts_with('#');
        if !continues {
            break;
        }
        if f.scan.comments[start - 1].contains(marker) {
            return true;
        }
        start -= 1;
    }
    // ...then through the contiguous comment block directly above it.
    let mut j = start;
    while j > 0 {
        j -= 1;
        let comment_only =
            f.scan.code[j].trim().is_empty() && !f.scan.comments[j].trim().is_empty();
        if !comment_only {
            break;
        }
        if f.scan.comments[j].contains(marker) {
            return true;
        }
    }
    false
}
