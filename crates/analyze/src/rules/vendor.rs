//! `vendor-api-surface`: keep the offline vendor stubs and the
//! workspace honest about each other.
//!
//! The repo builds without a network, so `vendor/*` carries hand-written
//! API-compatible subsets of the real crates. Two drifts are possible
//! and both are checked:
//!
//! - **missing item** — a workspace file imports (or names inline) a
//!   path from a vendor crate that the stub does not expose. The real
//!   crate would accept it; the stub breaks the build later and
//!   mysteriously. Reported at the importing line.
//! - **dead surface** — a module-level `pub` item in a stub that nothing
//!   references: not workspace code, and not any stub source either
//!   (stub-internal references are counted over *raw* text, because
//!   derive-macro stubs name their runtime support items inside token
//!   template strings, which the code view blanks). Dead stub surface is
//!   untested code masquerading as a dependency; either trim it or
//!   annotate it with
//!   `// lint: allow(vendor-api-surface) — <why the parity matters>`.
//!
//! The import scan is deliberately permissive where Rust is flexible:
//! glob imports are skipped, `as` renames are checked against the
//! original name, `self` resolves to its parent segment, and inline
//! qualified paths check their final segment (which finds misspelled
//! methods too, since the harvest records `pub fn`s at any depth).

use crate::diag::Diagnostic;
use crate::walk::{self, FileSet, SourceFile};
use std::collections::BTreeSet;
use std::fs;

/// Rule id.
pub const RULE: &str = "vendor-api-surface";

/// One vendor stub crate.
struct VendorCrate {
    /// Import name (the directory name under `vendor/`).
    name: String,
    /// Scanned stub sources.
    files: Vec<SourceFile>,
    /// Every `pub` item name at any depth, plus enum variants,
    /// `macro_rules!` names and `pub use` leaves: the set an import may
    /// legally name.
    pub_names: BTreeSet<String>,
    /// Module-level `pub` items: `(name, rel file, 0-based line)` — the
    /// surface that must be earned by a workspace reference.
    surface: Vec<(String, String, usize)>,
}

/// Cross-check every vendor stub against the workspace.
pub fn run(set: &FileSet) -> Vec<Diagnostic> {
    let crates = vendor_crates(set);
    if crates.is_empty() {
        return Vec::new(); // tree without vendor stubs: nothing to check
    }
    // Consumers: the collected lib/bin sources plus tests and benches
    // (proptest/criterion are imported only there).
    let extra = extra_consumers(set);
    let consumers: Vec<&SourceFile> = set.files.iter().chain(extra.iter()).collect();

    let mut out = Vec::new();
    for vc in &crates {
        let mut referenced = false;
        for f in &consumers {
            for imp in crate_references(f, &vc.name) {
                referenced = true;
                if !vc.pub_names.contains(&imp.leaf) && !f.allowed(RULE, imp.line) {
                    out.push(Diagnostic::new(
                        RULE,
                        &f.rel,
                        imp.line + 1,
                        format!(
                            "imports `{}` from vendor stub `{}`, which exposes no such item",
                            imp.leaf, vc.name
                        ),
                    ));
                }
            }
        }
        if !referenced {
            continue; // an unimported stub is dead weight, but Cargo owns that call
        }
        for (name, rel, line) in &vc.surface {
            let used = consumers
                .iter()
                .any(|f| f.scan.code.iter().any(|l| contains_word(l, name)))
                || crates.iter().any(|c2| {
                    c2.files.iter().any(|vf| {
                        vf.raw.lines().enumerate().any(|(ln, l)| {
                            !(vf.rel == *rel && ln == *line) && contains_word(l, name)
                        })
                    })
                });
            let allowed = vc
                .files
                .iter()
                .find(|f| &f.rel == rel)
                .is_some_and(|f| f.allowed(RULE, *line));
            if !used && !allowed {
                out.push(Diagnostic::new(
                    RULE,
                    rel,
                    *line + 1,
                    format!(
                        "vendor stub `pub` item `{name}` is referenced nowhere in the workspace — trim it or justify the parity with a lint allow"
                    ),
                ));
            }
        }
    }
    out
}

/// Scan `vendor/*/src/**/*.rs` and harvest each stub's API.
fn vendor_crates(set: &FileSet) -> Vec<VendorCrate> {
    let mut crates = Vec::new();
    let Ok(entries) = fs::read_dir(set.root.join("vendor")) else {
        return crates;
    };
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut files = Vec::new();
        let _ = walk::walk_rs(&src, &mut |path| {
            let raw = fs::read_to_string(path)?;
            files.push(SourceFile::from_source(
                &walk::rel_path(&set.root, path),
                raw,
            ));
            Ok(())
        });
        let mut pub_names = BTreeSet::new();
        let mut surface = Vec::new();
        for f in &files {
            harvest(f, &mut pub_names, &mut surface);
        }
        crates.push(VendorCrate {
            name,
            files,
            pub_names,
            surface,
        });
    }
    crates
}

/// Consumer sources outside the core [`FileSet`]: `tests/`,
/// `crates/*/tests/`, `crates/*/benches/`.
fn extra_consumers(set: &FileSet) -> Vec<SourceFile> {
    let mut dirs = vec![set.root.join("tests")];
    if let Ok(entries) = fs::read_dir(set.root.join("crates")) {
        for e in entries.flatten() {
            dirs.push(e.path().join("tests"));
            dirs.push(e.path().join("benches"));
        }
    }
    let mut files = Vec::new();
    for dir in dirs {
        let _ = walk::walk_rs(&dir, &mut |path| {
            let raw = fs::read_to_string(path)?;
            files.push(SourceFile::from_source(
                &walk::rel_path(&set.root, path),
                raw,
            ));
            Ok(())
        });
    }
    files
}

/// What a brace on the stack belongs to, for deciding module level.
#[derive(PartialEq, Clone, Copy)]
enum Kind {
    Mod,
    Enum,
    Trait,
    Other,
}

/// Walk one stub file, filling the importable-name set and the
/// module-level surface list.
fn harvest(
    f: &SourceFile,
    pub_names: &mut BTreeSet<String>,
    surface: &mut Vec<(String, String, usize)>,
) {
    let mut stack: Vec<Kind> = Vec::new();
    let mut header = String::new();
    for (i, line) in f.scan.code.iter().enumerate() {
        let t = line.trim();
        if !f.scan.in_test[i] {
            if let Some((kw, name)) = item_decl(t) {
                let is_pub = t.starts_with("pub");
                // Trait members are callable without a `pub` of their
                // own (`Error::custom`, provided methods, assoc types).
                let trait_member =
                    stack.last() == Some(&Kind::Trait) && matches!(kw, "fn" | "type" | "const");
                if is_pub || kw == "macro_rules" || trait_member {
                    if kw == "use" {
                        // `pub use` re-exports widen the legal-import
                        // set but are not counted as owned surface.
                        for leaf in use_leaves(t) {
                            pub_names.insert(leaf);
                        }
                    } else {
                        pub_names.insert(name.clone());
                        if stack.iter().all(|k| *k == Kind::Mod) {
                            surface.push((name, f.rel.clone(), i));
                        }
                    }
                }
            } else if stack.last() == Some(&Kind::Enum) {
                if let Some(v) = leading_ident(t) {
                    pub_names.insert(v); // enum variant
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    let kind = if contains_word(&header, "mod") {
                        Kind::Mod
                    } else if contains_word(&header, "enum") {
                        Kind::Enum
                    } else if contains_word(&header, "trait") && !contains_word(&header, "impl") {
                        Kind::Trait
                    } else {
                        Kind::Other
                    };
                    stack.push(kind);
                    header.clear();
                }
                '}' => {
                    stack.pop();
                    header.clear();
                }
                ';' => header.clear(),
                _ => header.push(c),
            }
        }
        header.push(' ');
    }
}

/// `(keyword, name)` if the trimmed line declares a nameable item.
fn item_decl(t: &str) -> Option<(&'static str, String)> {
    if let Some(rest) = t.strip_prefix("macro_rules!") {
        return leading_ident(rest.trim_start()).map(|n| ("macro_rules", n));
    }
    let mut rest = t;
    for prefix in ["pub", "(crate)", "(super)", "unsafe", "async"] {
        rest = rest.strip_prefix(prefix).unwrap_or(rest).trim_start();
    }
    for kw in [
        "fn", "struct", "enum", "trait", "mod", "use", "type", "const", "static",
    ] {
        if let Some(after) = rest.strip_prefix(kw) {
            let after = after.strip_prefix(' ')?;
            let after = after.strip_prefix("mut ").unwrap_or(after);
            return leading_ident(after.trim_start()).map(|n| (kw, n));
        }
    }
    None
}

/// The leading identifier of `t`, if it starts with one.
fn leading_ident(t: &str) -> Option<String> {
    let name: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(name)
    }
}

/// Whether `line` contains `word` with identifier boundaries both sides.
fn contains_word(line: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(p) = line[from..].find(word) {
        let at = from + p;
        from = at + word.len();
        let before_ok = line[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after_ok = line[from..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// One workspace reference into a vendor crate.
struct ImportRef {
    /// The final path segment the workspace names.
    leaf: String,
    /// 0-based line of the reference.
    line: usize,
}

/// Every `use <crate>::…` leaf and inline `<crate>::…` qualified path in
/// `f` that targets `crate_name`.
fn crate_references(f: &SourceFile, crate_name: &str) -> Vec<ImportRef> {
    let text = f.scan.code.join("\n");
    let mut out = Vec::new();
    let pat = format!("{crate_name}::");
    let mut from = 0;
    while let Some(p) = text[from..].find(&pat) {
        let at = from + p;
        from = at + pat.len();
        let before_ok = text[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != ':');
        if !before_ok {
            continue;
        }
        let line = text[..at].matches('\n').count();
        let rest = &text[at + pat.len()..];
        // Distinguish a `use` statement from an inline qualified path by
        // the statement keyword preceding the crate name.
        let head = text[..at]
            .rsplit(['\n', ';', '{', '}'])
            .next()
            .unwrap_or("")
            .trim();
        if head == "use" || head == "pub use" || head.ends_with(" use") {
            let tree = rest.split(';').next().unwrap_or(rest);
            for leaf in use_tree_leaves(tree, crate_name) {
                out.push(ImportRef { leaf, line });
            }
        } else {
            // Inline path: take the final `::`-chained identifier.
            let mut leaf = String::new();
            let mut seg = String::new();
            let mut chars = rest.chars().peekable();
            while let Some(c) = chars.next() {
                if c.is_alphanumeric() || c == '_' {
                    seg.push(c);
                } else if c == ':' && chars.peek() == Some(&':') && !seg.is_empty() {
                    chars.next();
                    leaf = std::mem::take(&mut seg);
                } else {
                    break;
                }
            }
            if !seg.is_empty() {
                leaf = seg;
            }
            if !leaf.is_empty() {
                out.push(ImportRef { leaf, line });
            }
        }
    }
    out
}

/// Leaves of a full `use` statement line (including the keywords).
fn use_leaves(stmt: &str) -> Vec<String> {
    let body = stmt
        .trim_start_matches("pub")
        .trim_start()
        .trim_start_matches("use")
        .trim_start();
    // Drop the root segment (crate/self/its own name): leaves are what
    // gets re-exported.
    match body.split_once("::") {
        Some((_, rest)) => use_tree_leaves(rest, body),
        None => Vec::new(),
    }
}

/// Leaf names of a use-tree fragment (`a::b`, `{x, y::z}`, `w as v`,
/// `self`, `*`), with `parent` naming the segment `self` resolves to.
fn use_tree_leaves(tree: &str, parent: &str) -> Vec<String> {
    let mut out = Vec::new();
    collect_leaves(tree.trim().trim_end_matches(';').trim(), parent, &mut out);
    out
}

fn collect_leaves(tree: &str, parent: &str, out: &mut Vec<String>) {
    let t = tree.trim();
    if let Some(brace) = t.find('{') {
        let prefix = t[..brace].trim_end_matches(':').trim();
        let new_parent = prefix.rsplit("::").next().unwrap_or(parent);
        let new_parent = if new_parent.is_empty() {
            parent
        } else {
            new_parent
        };
        let end = t.rfind('}').map_or(t.len(), |e| e.max(brace + 1));
        let inner = &t[brace + 1..end];
        let mut depth = 0usize;
        let mut start = 0usize;
        for (i, c) in inner.char_indices() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    collect_leaves(&inner[start..i], new_parent, out);
                    start = i + 1;
                }
                _ => {}
            }
        }
        collect_leaves(&inner[start..], new_parent, out);
        return;
    }
    if t.ends_with('*') || t.is_empty() {
        return;
    }
    let t = t.split(" as ").next().unwrap_or(t).trim();
    let leaf = t.rsplit("::").next().unwrap_or(t).trim();
    if leaf == "self" {
        if let Some(p) = leading_ident(parent) {
            out.push(p);
        }
    } else if let Some(name) = leading_ident(leaf) {
        if name.len() == leaf.len() {
            out.push(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn use_tree_leaves_cover_the_grammar() {
        assert_eq!(use_tree_leaves("deque::Worker", ""), vec!["Worker"]);
        assert_eq!(
            use_tree_leaves("deque::{Worker, Stealer as S}", ""),
            vec!["Worker", "Stealer"]
        );
        assert_eq!(
            use_tree_leaves("thread::{self, Scope}", ""),
            vec!["thread", "Scope"]
        );
        assert_eq!(use_tree_leaves("prelude::*", ""), Vec::<String>::new());
        assert_eq!(use_tree_leaves("{a::{b, c}, d}", ""), vec!["b", "c", "d"]);
    }

    #[test]
    fn inline_paths_resolve_to_their_final_segment() {
        let f = SourceFile::from_source(
            "x.rs",
            "let w = crossbeam::deque::Worker::new_lifo();\nlet g = crossbeam::thread::scope(|s| s);\n"
                .to_string(),
        );
        let refs = crate_references(&f, "crossbeam");
        let leaves: Vec<&str> = refs.iter().map(|r| r.leaf.as_str()).collect();
        assert_eq!(leaves, vec!["new_lifo", "scope"]);
    }

    #[test]
    fn use_statements_resolve_through_braces() {
        let f = SourceFile::from_source(
            "x.rs",
            "use crossbeam::deque::{Injector, Steal, Worker};\nuse crossbeam::thread;\n"
                .to_string(),
        );
        let refs = crate_references(&f, "crossbeam");
        let leaves: Vec<&str> = refs.iter().map(|r| r.leaf.as_str()).collect();
        assert_eq!(leaves, vec!["Injector", "Steal", "Worker", "thread"]);
    }

    #[test]
    fn harvest_separates_surface_from_depth() {
        let src = "pub mod deque {\n    pub enum Steal {\n        Empty,\n        Success(u8),\n    }\n    pub struct Worker;\n    impl Worker {\n        pub fn push(&self) {}\n    }\n}\n";
        let f = SourceFile::from_source("vendor/x/src/lib.rs", src.to_string());
        let mut pub_names = BTreeSet::new();
        let mut surface = Vec::new();
        harvest(&f, &mut pub_names, &mut surface);
        let names: Vec<&str> = surface.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, vec!["deque", "Steal", "Worker"]);
        for n in ["push", "Empty", "Success"] {
            assert!(pub_names.contains(n), "{n} should be importable");
        }
    }
}
