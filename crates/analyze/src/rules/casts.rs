//! `cast-truncation-audit`: in the hot-path files of `crates/graph` and
//! `crates/core`, every narrowing `as` cast (`usize → u32`,
//! `u64 → u32`/`usize`, signed ↔ unsigned) must either become
//! `try_into()` with a typed error, or carry a `cast: <bound proof>`
//! comment citing the invariant that bounds the value — the u32 edge
//! cap is only as strong as the arithmetic that feeds it.
//!
//! The resolver is type-aware-lite: cast sources are resolved through
//! locals, struct fields, method returns and element types, so the
//! hundreds of *widening* `as usize` casts clear automatically and only
//! genuinely lossy (or unresolvable sub-word) narrowings demand proof.
//! `usize`/`isize` are pinned to 64 bits — the same host assumption the
//! shard format already encodes.

use super::ctx::Ctx;
use crate::diag::Diagnostic;
use crate::flow::{IntTy, Pos, Resolved};
use crate::walk::FileSet;

/// Stable rule id.
pub const RULE: &str = "cast-truncation-audit";

/// The audited hot-path files: index arithmetic in the graph kernel and
/// the mining engines.
pub const AUDITED_FILES: &[&str] = &[
    "crates/graph/src/builder.rs",
    "crates/graph/src/compact.rs",
    "crates/graph/src/kernel.rs",
    "crates/graph/src/shard.rs",
    "crates/graph/src/sort.rs",
    "crates/core/src/beta.rs",
    "crates/core/src/miner.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/sharded.rs",
];

/// Run the rule over the set.
pub fn run(set: &FileSet, ctx: &Ctx) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rel in AUDITED_FILES {
        let Some(idx) = set.files.iter().position(|f| f.rel == *rel) else {
            continue;
        };
        let f = &set.files[idx];
        let fc = &ctx.files[idx];
        for (i, code) in f.scan.code.iter().enumerate() {
            if f.scan.in_test[i] || f.allowed(RULE, i) {
                continue;
            }
            // debug_assert arguments are dev-only diagnostics code.
            if code.contains("debug_assert") {
                continue;
            }
            let mut from = 0;
            while let Some(p) = code[from..].find(" as ") {
                let at = from + p;
                from = at + 4;
                let target_text: String = code[at + 4..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                let Resolved::Int(target) = ctx.types.classify(&target_text) else {
                    continue; // float casts, `use … as …`, pointer casts
                };
                let chain = chain_with_parens(code, at);
                let src = fc.resolve_int(&ctx.types, Pos { line: i, col: at }, &chain);
                let Some(detail) = flag_reason(&src, target) else {
                    continue;
                };
                // A `cast:` proof clears the finding — if it actually
                // says something.
                match proof_text(f, i) {
                    Some(proof) if proof.chars().any(|c| c.is_alphanumeric()) => continue,
                    Some(_) => {
                        diags.push(Diagnostic::new(
                            RULE,
                            &f.rel,
                            i + 1,
                            "`cast:` annotation with an empty bound proof — cite the invariant \
                             that bounds the value",
                        ));
                        break; // one per line is enough
                    }
                    None => {}
                }
                diags.push(Diagnostic::new(
                    RULE,
                    &f.rel,
                    i + 1,
                    format!(
                        "{detail} `as {target_text}` — use `try_into()` with a typed error or \
                         prove the bound with a `cast:` comment"
                    ),
                ));
                break; // one diagnostic per line
            }
        }
    }
    diags
}

/// Why a cast is flagged, or `None` if it is provably lossless.
fn flag_reason(src: &Resolved, target: IntTy) -> Option<String> {
    let name = |t: IntTy| {
        let mut s = String::from(if t.signed { "i" } else { "u" });
        s.push_str(&t.bits.to_string());
        s
    };
    match src {
        Resolved::Int(s) if s.narrows_into(target) => {
            Some(format!("narrowing cast `{}`", name(*s)))
        }
        Resolved::Int(_) => None,
        Resolved::Conflict(candidates) if candidates.iter().any(|s| s.narrows_into(target)) => {
            Some("cast with conflicting source candidates".to_string())
        }
        Resolved::Conflict(_) => None,
        Resolved::Literal(v) => {
            let fits = match (target.signed, target.bits) {
                (false, bits) if bits >= 128 => true,
                (false, bits) => *v < (1u128 << bits),
                (true, bits) => *v < (1u128 << (bits - 1)),
            };
            if fits {
                None
            } else {
                Some(format!("literal {v} overflows"))
            }
        }
        Resolved::NonInt => None, // enum discriminants etc.
        // Unresolvable sources casting into a sub-word target must be
        // proven; into 64-bit targets they cannot truncate on this host
        // unless the source is 128-bit, which the tree does not use.
        Resolved::Unknown if target.bits < 64 => Some("unresolved source cast".to_string()),
        Resolved::Unknown => None,
    }
}

/// The cast-source chain, including a leading parenthesized group.
fn chain_with_parens(code: &str, cast_at: usize) -> String {
    let end = code[..cast_at].trim_end().len();
    crate::flow::chain_before(code, end)
}

/// Find the `cast:` proof adjacent to 0-based `line`: the trailing
/// comment, the enclosing multi-line statement's lines, or the
/// contiguous comment block above — same adjacency as
/// [`super::justified`], but returning the proof text.
fn proof_text(f: &crate::walk::SourceFile, line: usize) -> Option<String> {
    let grab = |l: usize| -> Option<String> {
        let c = &f.scan.comments[l];
        let p = c.find("cast:")?;
        Some(c[p + 5..].trim().to_string())
    };
    if let Some(t) = grab(line) {
        return Some(t);
    }
    let mut start = line;
    while start > 0 {
        let above = f.scan.code[start - 1].trim_end();
        let continues = !above.is_empty()
            && !above.ends_with([';', '{', '}'])
            && !above.trim_start().starts_with('#');
        if !continues {
            break;
        }
        if let Some(t) = grab(start - 1) {
            return Some(t);
        }
        start -= 1;
    }
    let mut j = start;
    while j > 0 {
        j -= 1;
        let comment_only =
            f.scan.code[j].trim().is_empty() && !f.scan.comments[j].trim().is_empty();
        if !comment_only {
            break;
        }
        if let Some(t) = grab(j) {
            return Some(t);
        }
    }
    None
}
