//! `proof-model-linkage`: the ordering proofs scattered through the
//! tree cite the loom-lite models as their evidence ("see the admission
//! model", `grm_analyze::model::bound`) — this rule closes the loop so
//! a citation can never dangle and a model can never silently fall out
//! of the verification suite.
//!
//! Three obligations:
//! 1. every comment citation of the form `model::<name>` or
//!    `see <name> model` must resolve to a real module file under
//!    `crates/analyze/src/model/`;
//! 2. every model module must be declared in `model/mod.rs` *and*
//!    wired into `full_suite()` (so `grm-analyze model` runs it) —
//!    the `sched` explorer itself is infrastructure and only needs the
//!    declaration;
//! 3. CI must actually invoke the model suite (a workflow step naming
//!    `grm-analyze` and `model`), so the proofs are exercised on every
//!    push, not just on developer machines.

use crate::diag::Diagnostic;
use crate::walk::FileSet;
use std::collections::BTreeSet;

/// Stable rule id.
pub const RULE: &str = "proof-model-linkage";

const MODEL_DIR: &str = "crates/analyze/src/model/";

/// Run the rule over the set.
pub fn run(set: &FileSet) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Inventory the model modules from the file set itself.
    let modules: BTreeSet<String> = set
        .files
        .iter()
        .filter_map(|f| {
            let rest = f.rel.strip_prefix(MODEL_DIR)?;
            let stem = rest.strip_suffix(".rs")?;
            if stem == "mod" || rest.contains('/') {
                None
            } else {
                Some(stem.to_string())
            }
        })
        .collect();

    let mod_rs_rel = format!("{MODEL_DIR}mod.rs");
    let mod_rs = set.get(&mod_rs_rel);

    // Obligation 2: declared and reachable from the suite.
    if let Some(mod_rs) = mod_rs {
        let joined = mod_rs.scan.code.join("\n");
        for m in &modules {
            let rel = format!("{MODEL_DIR}{m}.rs");
            if !joined.contains(&format!("mod {m};")) {
                diags.push(Diagnostic::new(
                    RULE,
                    &rel,
                    0,
                    format!("model module `{m}` is not declared in model/mod.rs"),
                ));
                continue;
            }
            if *m == "sched" {
                continue; // the explorer: infrastructure, not a protocol
            }
            if !joined.contains(&format!("{m}::suite")) {
                diags.push(Diagnostic::new(
                    RULE,
                    &rel,
                    0,
                    format!(
                        "model module `{m}` is not wired into full_suite() — `grm-analyze model` \
                         will never run it"
                    ),
                ));
            }
        }
    }

    // Obligation 3: CI runs the suite. Only meaningful when the tree
    // has models at all.
    if !modules.is_empty() && mod_rs.is_some() && !ci_runs_models(set) {
        diags.push(Diagnostic::new(
            RULE,
            &mod_rs_rel,
            0,
            "no CI workflow invokes `grm-analyze model` — the verification suite is not exercised",
        ));
    }

    // Obligation 1: citations resolve.
    for f in &set.files {
        for (i, comment) in f.scan.comments.iter().enumerate() {
            if f.allowed(RULE, i) {
                continue;
            }
            // `model::<name>` citations.
            let mut from = 0;
            while let Some(p) = comment[from..].find("model::") {
                let at = from + p;
                from = at + 7;
                let before = comment[..at].chars().next_back();
                if before.is_some_and(|c| c.is_alphanumeric()) {
                    continue;
                }
                let name: String = comment[at + 7..]
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if name.is_empty() {
                    continue;
                }
                if !modules.contains(&name) {
                    diags.push(Diagnostic::new(
                        RULE,
                        &f.rel,
                        i + 1,
                        format!("proof cites `model::{name}`, but no such model module exists"),
                    ));
                }
            }
            // `see <name> model` citations.
            let mut from = 0;
            while let Some(p) = comment[from..].find("see ") {
                let at = from + p;
                from = at + 4;
                let rest = &comment[at + 4..];
                let word: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if word.is_empty() || !rest[word.len()..].starts_with(" model") {
                    continue;
                }
                if matches!(word.as_str(), "the" | "a" | "an" | "this" | "that" | "its") {
                    continue;
                }
                if !modules.contains(&word) {
                    diags.push(Diagnostic::new(
                        RULE,
                        &f.rel,
                        i + 1,
                        format!("proof says `see {word} model`, but no such model module exists"),
                    ));
                }
            }
        }
    }

    diags
}

/// Does any workflow under `.github/workflows/` run the model suite?
fn ci_runs_models(set: &FileSet) -> bool {
    let dir = set.root.join(".github").join("workflows");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    for e in entries.flatten() {
        let path = e.path();
        let yamlish = path.extension().is_some_and(|x| x == "yml" || x == "yaml");
        if !yamlish {
            continue;
        }
        if let Ok(text) = std::fs::read_to_string(&path) {
            if text.contains("grm-analyze") && text.contains("model") {
                return true;
            }
        }
    }
    false
}
