//! The toy dating network of Fig. 1.
//!
//! Node attributes follow Fig. 1b exactly. The paper draws the topology but
//! never lists the edges, and the supp/conf values quoted in Examples 1–2
//! are mutually inconsistent (GR1's denominator implies 14 edges from male
//! nodes, GR3's implies 6 from F-Grad nodes, but `|E| = 15`), so the edge
//! list below is our own reconstruction, chosen to realize every number
//! the examples rely on that *can* be realized simultaneously:
//!
//! * `|E| = 15` dating edges;
//! * **GR1** `(SEX:M) -> (SEX:F, RACE:Asian)`: supp = 7/15 (as printed;
//!   conf here is 7/9 since only 9 edges originate from men);
//! * **GR2** `(SEX:M, RACE:Asian) -> (SEX:F, RACE:Asian)`: supp = 0 —
//!   Asian men are the exception (the Are-You-Interested finding);
//! * **GR3** `(SEX:F, EDU:Grad) -> (SEX:M, EDU:Grad)`: supp = 4/15,
//!   conf = 4/6 (as printed);
//! * **GR4** `(SEX:F, EDU:Grad) -> (SEX:M, EDU:College)`: supp = 2/15,
//!   conf = 2/6, and with EDU homophilous **nhp = 2/(6−4) = 100%** — the
//!   motivating computation of §III-B.
//!
//! Conventions: SEX F=1 M=2; RACE Asian=1 Latino=2 White=3;
//! EDU HighSchool=1 College=2 Grad=3; RACE and EDU are homophily
//! attributes, SEX is not; one edge attribute TYPE with the single value
//! `dates`.

use grm_graph::{GraphBuilder, Schema, SchemaBuilder, SocialGraph};

/// The schema of the toy dating network.
pub fn toy_schema() -> Schema {
    SchemaBuilder::new()
        .node_attr_named("SEX", false, ["F", "M"])
        .node_attr_named("RACE", true, ["Asian", "Latino", "White"])
        .node_attr_named("EDU", true, ["HighSchool", "College", "Grad"])
        .edge_attr_named("TYPE", ["dates"])
        .build()
        .expect("static schema is valid")
}

/// Build the 14-node, 15-edge toy dating network.
pub fn toy_network() -> SocialGraph {
    let mut b = GraphBuilder::new(toy_schema());
    // Fig. 1b, nodes 1–14 (ids 0–13): (SEX, RACE, EDU).
    let rows: [[u16; 3]; 14] = [
        [1, 1, 3], // 1  F Asian  Grad
        [1, 2, 3], // 2  F Latino Grad
        [1, 3, 3], // 3  F White  Grad
        [1, 1, 2], // 4  F Asian  College
        [1, 3, 2], // 5  F White  College
        [1, 1, 1], // 6  F Asian  HighSchool
        [1, 2, 1], // 7  F Latino HighSchool
        [2, 1, 3], // 8  M Asian  Grad
        [2, 2, 3], // 9  M Latino Grad
        [2, 3, 3], // 10 M White  Grad
        [2, 2, 2], // 11 M Latino College
        [2, 3, 2], // 12 M White  College
        [2, 1, 1], // 13 M Asian  HighSchool
        [2, 3, 1], // 14 M White  HighSchool
    ];
    for row in rows {
        b.add_node(&row).expect("static rows are valid");
    }
    let dates = &[1u16];
    // Six edges from F-Grad women: four to Grad men, two to College men
    // (GR3 = 4/6, GR4 = 2/6, homophily effect on EDU = 4).
    let edges: [(u32, u32); 15] = [
        (0, 8),  // 1 -> 9   F Asian Grad  -> M Latino Grad
        (0, 9),  // 1 -> 10  F Asian Grad  -> M White  Grad
        (1, 9),  // 2 -> 10  F Latino Grad -> M White  Grad
        (2, 8),  // 3 -> 9   F White Grad  -> M Latino Grad
        (1, 10), // 2 -> 11  F Latino Grad -> M Latino College
        (2, 11), // 3 -> 12  F White Grad  -> M White  College
        // Nine edges from men: seven to Asian women (GR1 = 7/15), none of
        // them from Asian men (GR2 = 0).
        (7, 1),  // 8 -> 2   M Asian Grad  -> F Latino Grad
        (12, 6), // 13 -> 7  M Asian HS    -> F Latino HS
        (8, 0),  // 9 -> 1   M Latino Grad -> F Asian Grad
        (8, 3),  // 9 -> 4   M Latino Grad -> F Asian College
        (9, 5),  // 10 -> 6  M White Grad  -> F Asian HS
        (10, 3), // 11 -> 4  M Latino Coll -> F Asian College
        (11, 5), // 12 -> 6  M White Coll  -> F Asian HS
        (13, 5), // 14 -> 6  M White HS    -> F Asian HS
        (9, 0),  // 10 -> 1  M White Grad  -> F Asian Grad
    ];
    for (s, t) in edges {
        b.add_edge(s, t, dates).expect("static edges are valid");
    }
    b.build().expect("toy network is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use grm_graph::NodeAttrId;

    const SEX: NodeAttrId = NodeAttrId(0);
    const RACE: NodeAttrId = NodeAttrId(1);
    const EDU: NodeAttrId = NodeAttrId(2);

    #[test]
    fn sizes_match_fig1() {
        let g = toy_network();
        assert_eq!(g.node_count(), 14);
        assert_eq!(g.edge_count(), 15);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn node_table_matches_fig1b() {
        let g = toy_network();
        // Spot checks against the printed table.
        assert_eq!(g.node_row(0), &[1, 1, 3]); // 1: F Asian Grad
        assert_eq!(g.node_row(6), &[1, 2, 1]); // 7: F Latino HighSchool
        assert_eq!(g.node_row(7), &[2, 1, 3]); // 8: M Asian Grad
        assert_eq!(g.node_row(13), &[2, 3, 1]); // 14: M White HighSchool
                                                // Seven women, seven men.
        let females = g.node_ids().filter(|&v| g.node_attr(v, SEX) == 1).count();
        assert_eq!(females, 7);
    }

    #[test]
    fn gr1_support_is_7_of_15() {
        let g = toy_network();
        let supp = g
            .edge_ids()
            .filter(|&e| {
                g.src_attr(e, SEX) == 2 && g.dst_attr(e, SEX) == 1 && g.dst_attr(e, RACE) == 1
            })
            .count();
        assert_eq!(supp, 7, "Example 1: supp(GR1) = 7/15");
    }

    #[test]
    fn gr2_asian_men_are_the_exception() {
        let g = toy_network();
        let supp = g
            .edge_ids()
            .filter(|&e| {
                g.src_attr(e, SEX) == 2
                    && g.src_attr(e, RACE) == 1
                    && g.dst_attr(e, SEX) == 1
                    && g.dst_attr(e, RACE) == 1
            })
            .count();
        assert_eq!(supp, 0, "Example 1: supp(GR2) = 0");
    }

    #[test]
    fn gr3_and_gr4_counts_match_example2() {
        let g = toy_network();
        let from_fgrad: Vec<_> = g
            .edge_ids()
            .filter(|&e| g.src_attr(e, SEX) == 1 && g.src_attr(e, EDU) == 3)
            .collect();
        assert_eq!(from_fgrad.len(), 6, "supp(l ∧ w) = 6");
        let gr3 = from_fgrad
            .iter()
            .filter(|&&e| g.dst_attr(e, SEX) == 2 && g.dst_attr(e, EDU) == 3)
            .count();
        assert_eq!(gr3, 4, "supp(GR3) = 4");
        let gr4 = from_fgrad
            .iter()
            .filter(|&&e| g.dst_attr(e, SEX) == 2 && g.dst_attr(e, EDU) == 2)
            .count();
        assert_eq!(gr4, 2, "supp(GR4) = 2");
        // The homophily effect of GR4: edges from F-Grad to EDU:Grad.
        let heff = from_fgrad
            .iter()
            .filter(|&&e| g.dst_attr(e, EDU) == 3)
            .count();
        assert_eq!(heff, 4, "supp(l -> l[β]) = 4, so nhp(GR4) = 2/(6-4) = 1");
    }

    #[test]
    fn schema_flags_match_paper() {
        let s = toy_schema();
        assert!(!s.node_attr(SEX).is_homophily());
        assert!(s.node_attr(RACE).is_homophily());
        assert!(s.node_attr(EDU).is_homophily());
    }
}
