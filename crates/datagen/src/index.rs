//! Value-bucket index: for each `(attribute, value)` the list of nodes
//! carrying that value, used to sample homophilous / rule-driven edge
//! destinations in O(log bucket) — optionally weighted by per-node
//! *attractiveness* (e.g. productive authors attract co-authorship edges
//! far beyond their population share, which is how the paper's DBLP data
//! gets a ~70% edge share for the 91%-of-authors `Poor` class).

use grm_graph::AttrValue;
use rand::Rng;

/// One bucket: node ids plus the cumulative attractiveness weights used
/// for weighted sampling.
#[derive(Debug, Default, Clone)]
struct Bucket {
    nodes: Vec<u32>,
    /// `cum[i]` = total weight of `nodes[..=i]`.
    cum: Vec<f64>,
}

impl Bucket {
    fn push(&mut self, node: u32, weight: f64) {
        let total = self.cum.last().copied().unwrap_or(0.0);
        self.nodes.push(node);
        self.cum.push(total + weight.max(0.0));
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, exclude: u32) -> Option<u32> {
        if self.nodes.is_empty() {
            return None;
        }
        let total = *self.cum.last().expect("non-empty");
        if total <= 0.0 {
            return self.nodes.iter().copied().find(|&n| n != exclude);
        }
        for _ in 0..8 {
            let u = rng.gen::<f64>() * total;
            let i = self
                .cum
                .partition_point(|&c| c <= u)
                .min(self.nodes.len() - 1);
            if self.nodes[i] != exclude {
                return Some(self.nodes[i]);
            }
        }
        self.nodes.iter().copied().find(|&n| n != exclude)
    }
}

/// Node buckets per attribute value plus a global (all-nodes) bucket.
#[derive(Debug)]
pub struct ValueIndex {
    /// `buckets[attr][value]` (index 0 holds null-valued nodes).
    buckets: Vec<Vec<Bucket>>,
    all: Bucket,
}

impl ValueIndex {
    /// Build from node rows with uniform attractiveness.
    #[allow(dead_code)] // convenience constructor; exercised in tests
    pub fn build(domains: &[u16], rows: &[Vec<AttrValue>]) -> Self {
        Self::build_weighted(domains, rows, &vec![1.0; rows.len()])
    }

    /// Build with a per-node attractiveness weight.
    pub fn build_weighted(domains: &[u16], rows: &[Vec<AttrValue>], weights: &[f64]) -> Self {
        debug_assert_eq!(rows.len(), weights.len());
        let mut buckets: Vec<Vec<Bucket>> = domains
            .iter()
            .map(|&d| vec![Bucket::default(); d as usize + 1])
            .collect();
        let mut all = Bucket::default();
        for (node, (row, &w)) in rows.iter().zip(weights).enumerate() {
            all.push(node as u32, w);
            for (a, &v) in row.iter().enumerate() {
                buckets[a][v as usize].push(node as u32, w);
            }
        }
        ValueIndex { buckets, all }
    }

    /// Nodes with `attr = value`.
    #[allow(dead_code)] // introspection helper; exercised in tests
    pub fn bucket(&self, attr: usize, value: AttrValue) -> &[u32] {
        &self.buckets[attr][value as usize].nodes
    }

    /// Sample a node with `attr = value` by attractiveness, avoiding
    /// `exclude`; `None` when the bucket is empty or holds only `exclude`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        attr: usize,
        value: AttrValue,
        exclude: u32,
    ) -> Option<u32> {
        self.buckets[attr][value as usize].sample(rng, exclude)
    }

    /// Sample any node by attractiveness (the noise destination), avoiding
    /// `exclude`.
    pub fn sample_any<R: Rng + ?Sized>(&self, rng: &mut R, exclude: u32) -> Option<u32> {
        self.all.sample(rng, exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn index() -> ValueIndex {
        let rows = vec![vec![1, 2], vec![1, 0], vec![2, 2], vec![1, 1]];
        ValueIndex::build(&[2, 2], &rows)
    }

    #[test]
    fn buckets_contain_matching_nodes() {
        let idx = index();
        assert_eq!(idx.bucket(0, 1), &[0, 1, 3]);
        assert_eq!(idx.bucket(0, 2), &[2]);
        assert_eq!(idx.bucket(1, 0), &[1], "null bucket tracked too");
        assert_eq!(idx.bucket(1, 2), &[0, 2]);
    }

    #[test]
    fn sample_avoids_excluded() {
        let idx = index();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let n = idx.sample(&mut rng, 0, 1, 0).unwrap();
            assert_ne!(n, 0);
            assert!(idx.bucket(0, 1).contains(&n));
        }
    }

    #[test]
    fn sample_handles_singleton_and_empty() {
        let idx = index();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(idx.sample(&mut rng, 0, 2, 0), Some(2));
        assert_eq!(idx.sample(&mut rng, 0, 2, 2), None, "only node excluded");
        let empty = ValueIndex::build(&[3], &[]);
        assert_eq!(empty.sample(&mut rng, 0, 1, 0), None);
        assert_eq!(empty.sample_any(&mut rng, 0), None);
    }

    #[test]
    fn weighted_sampling_respects_attractiveness() {
        let rows = vec![vec![1], vec![1], vec![1]];
        let idx = ValueIndex::build_weighted(&[1], &rows, &[1.0, 8.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 3];
        for _ in 0..20_000 {
            counts[idx.sample(&mut rng, 0, 1, u32::MAX).unwrap() as usize] += 1;
        }
        let p1 = counts[1] as f64 / 20_000.0;
        assert!((p1 - 0.8).abs() < 0.02, "node 1 share {p1}");
    }

    #[test]
    fn sample_any_covers_all_nodes() {
        let idx = index();
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(idx.sample_any(&mut rng, u32::MAX).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn zero_weight_bucket_falls_back_to_first_distinct() {
        let rows = vec![vec![1], vec![1]];
        let idx = ValueIndex::build_weighted(&[1], &rows, &[0.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(idx.sample(&mut rng, 0, 1, 0), Some(1));
    }
}
