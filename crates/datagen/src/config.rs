//! Declarative configuration of synthetic attributed social networks.
//!
//! The generator model (see `generator.rs` and DESIGN.md §5) produces
//! graphs with three ingredients the paper's evaluation relies on:
//!
//! 1. **marginals** — per-attribute value distributions (skew matters: the
//!    paper explains P2 by the 19.54% share of `Secondary` and D1/D3/D5 by
//!    the 91.18% share of `Poor`);
//! 2. **homophily** — per-attribute propensity of edges to connect
//!    same-valued endpoints (the "primary bonds");
//! 3. **planted preference rules** — beyond-homophily "secondary bonds"
//!    like `(E:Basic) -> (E:Secondary)` that the nhp metric is designed to
//!    surface.

use serde::{Deserialize, Serialize};

/// One node attribute of a synthetic network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeAttrSpec {
    /// Attribute name.
    pub name: String,
    /// Names of the non-null values (domain size = `values.len()`), or
    /// `None` with `domain` for purely numeric attributes.
    pub values: Option<Vec<String>>,
    /// Domain size when `values` is `None`.
    pub domain: u16,
    /// Whether the attribute follows the homophily principle.
    pub homophily: bool,
    /// Sampling weights for values `1..=domain` (uniform if empty).
    pub weights: Vec<f64>,
    /// Probability a node leaves this attribute null (unfilled profile
    /// field).
    pub null_prob: f64,
    /// Relative strength of this attribute as a homophily driver (only
    /// meaningful when `homophily`): the chance that a homophily-driven
    /// edge matches on *this* attribute is proportional to this weight.
    pub homophily_weight: f64,
    /// Per-value destination *attractiveness* multipliers (index 0 =
    /// value 1). A node's attractiveness is the product over attributes;
    /// destinations are drawn proportionally to it. Models hubs such as
    /// productive authors whose edge share far exceeds their population
    /// share (the paper's supervisor/student explanation of D1/D3/D5).
    /// `None` = uniform.
    pub dst_weights: Option<Vec<f64>>,
}

impl NodeAttrSpec {
    /// Named, homophilous or not, with explicit weights.
    pub fn named(
        name: impl Into<String>,
        homophily: bool,
        values: Vec<String>,
        weights: Vec<f64>,
    ) -> Self {
        let domain = values.len() as u16;
        NodeAttrSpec {
            name: name.into(),
            values: Some(values),
            domain,
            homophily,
            weights,
            null_prob: 0.0,
            homophily_weight: if homophily { 1.0 } else { 0.0 },
            dst_weights: None,
        }
    }

    /// Numeric with `domain` values and the given weights (empty = uniform).
    pub fn numeric(
        name: impl Into<String>,
        homophily: bool,
        domain: u16,
        weights: Vec<f64>,
    ) -> Self {
        NodeAttrSpec {
            name: name.into(),
            values: None,
            domain,
            homophily,
            weights,
            null_prob: 0.0,
            homophily_weight: if homophily { 1.0 } else { 0.0 },
            dst_weights: None,
        }
    }

    /// Set the per-value destination attractiveness multipliers.
    pub fn with_dst_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.domain as usize, "one weight per value");
        self.dst_weights = Some(weights);
        self
    }

    /// Set the null (unfilled) probability.
    pub fn with_null_prob(mut self, p: f64) -> Self {
        self.null_prob = p;
        self
    }

    /// Set the homophily-driver weight.
    pub fn with_homophily_weight(mut self, w: f64) -> Self {
        self.homophily_weight = w;
        self
    }
}

/// One edge attribute of a synthetic network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeAttrSpec {
    /// Attribute name.
    pub name: String,
    /// Names of the non-null values.
    pub values: Vec<String>,
    /// Sampling weights for values `1..=domain` (uniform if empty).
    pub weights: Vec<f64>,
}

impl EdgeAttrSpec {
    /// Named edge attribute with weights.
    pub fn named(name: impl Into<String>, values: Vec<String>, weights: Vec<f64>) -> Self {
        EdgeAttrSpec {
            name: name.into(),
            values,
            weights,
        }
    }
}

/// A planted beyond-homophily preference: when the source of an edge
/// matches `src_conditions`, with probability `strength` the destination
/// is drawn from nodes with `target_attr = target_value` (and the edge
/// attribute is forced when `edge_attr` is set).
///
/// Rules are the ground truth the evaluation recovers: a planted rule
/// should surface in the nhp top-k while staying invisible to the
/// confidence ranking whenever homophily on the same attribute dominates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlantedRule {
    /// Human-readable tag used in tests and EXPERIMENTS.md (e.g. "P2").
    pub tag: String,
    /// Conditions on the source node: `(attr name, value)` pairs.
    pub src_conditions: Vec<(String, u16)>,
    /// The destination attribute the rule drives.
    pub target_attr: String,
    /// The destination value the rule drives toward.
    pub target_value: u16,
    /// Probability the rule fires for a matching source.
    pub strength: f64,
    /// Forced edge-attribute value, e.g. collaboration strength "often".
    pub edge_attr: Option<(String, u16)>,
}

impl PlantedRule {
    /// Construct a rule.
    pub fn new(
        tag: impl Into<String>,
        src_conditions: Vec<(String, u16)>,
        target_attr: impl Into<String>,
        target_value: u16,
        strength: f64,
    ) -> Self {
        PlantedRule {
            tag: tag.into(),
            src_conditions,
            target_attr: target_attr.into(),
            target_value,
            strength,
            edge_attr: None,
        }
    }

    /// Force an edge-attribute value on rule-driven edges.
    pub fn with_edge_attr(mut self, attr: impl Into<String>, value: u16) -> Self {
        self.edge_attr = Some((attr.into(), value));
        self
    }
}

/// A conditional dependency between node attributes: nodes matching
/// `(if_attr = if_value)` have `then_attr` re-sampled from `weights`.
/// Applied in declaration order after independent sampling — the mechanism
/// behind patterns like the paper's D4, where excellent authors cluster in
/// the DB area and area homophily then routes their ties to DB partners.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValueCorrelation {
    /// Condition attribute (by name).
    pub if_attr: String,
    /// Condition value.
    pub if_value: u16,
    /// Attribute to re-sample.
    pub then_attr: String,
    /// Replacement sampling weights for values `1..=domain`.
    pub weights: Vec<f64>,
}

impl ValueCorrelation {
    /// Construct a correlation.
    pub fn new(
        if_attr: impl Into<String>,
        if_value: u16,
        then_attr: impl Into<String>,
        weights: Vec<f64>,
    ) -> Self {
        ValueCorrelation {
            if_attr: if_attr.into(),
            if_value,
            then_attr: then_attr.into(),
            weights,
        }
    }
}

/// Full generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges (directed), or of undirected ties when
    /// `undirected` is set (each tie becomes two directed edges).
    pub edges: usize,
    /// Node attributes.
    pub node_attrs: Vec<NodeAttrSpec>,
    /// Edge attributes.
    pub edge_attrs: Vec<EdgeAttrSpec>,
    /// Planted preference rules, checked in order (first match may fire).
    pub rules: Vec<PlantedRule>,
    /// Conditional attribute dependencies, applied in order at node
    /// creation.
    #[serde(default)]
    pub correlations: Vec<ValueCorrelation>,
    /// Probability an edge (that no rule claimed) is homophily-driven.
    pub homophily_prob: f64,
    /// Represent ties as undirected (two directed edges), as in the DBLP
    /// co-authorship network.
    pub undirected: bool,
    /// RNG seed; identical configs and seeds yield identical graphs.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Scale node and edge counts by `factor` (for the `--scale` knobs of
    /// the experiment harness), keeping at least 10 nodes and 10 edges.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.nodes = ((self.nodes as f64 * factor) as usize).max(10);
        self.edges = ((self.edges as f64 * factor) as usize).max(10);
        self
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_defaults() {
        let a = NodeAttrSpec::named(
            "EDU",
            true,
            vec!["HS".into(), "College".into()],
            vec![0.7, 0.3],
        );
        assert_eq!(a.domain, 2);
        assert_eq!(a.homophily_weight, 1.0);
        let b = NodeAttrSpec::numeric("Region", true, 188, vec![]).with_homophily_weight(2.0);
        assert_eq!(b.domain, 188);
        assert_eq!(b.homophily_weight, 2.0);
        let c = NodeAttrSpec::named("SEX", false, vec!["F".into(), "M".into()], vec![])
            .with_null_prob(0.1);
        assert_eq!(c.homophily_weight, 0.0);
        assert_eq!(c.null_prob, 0.1);
    }

    #[test]
    fn rule_builder() {
        let r = PlantedRule::new("D2", vec![("Area".into(), 1)], "Area", 2, 0.06)
            .with_edge_attr("S", 3);
        assert_eq!(r.tag, "D2");
        assert_eq!(r.edge_attr, Some(("S".into(), 3)));
    }

    #[test]
    fn scaling_clamps() {
        let cfg = GeneratorConfig {
            nodes: 1000,
            edges: 5000,
            node_attrs: vec![],
            edge_attrs: vec![],
            rules: vec![],
            correlations: vec![],
            homophily_prob: 0.5,
            undirected: false,
            seed: 1,
        };
        let s = cfg.clone().scaled(0.001);
        assert_eq!(s.nodes, 10);
        assert_eq!(s.edges, 10);
        let big = cfg.scaled(2.0);
        assert_eq!(big.nodes, 2000);
        assert_eq!(big.edges, 10000);
    }
}
