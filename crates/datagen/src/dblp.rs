//! DBLP-like synthetic co-authorship dataset (§VI-A substitution).
//!
//! Mirrors the paper's DBLP extraction: 28,702 authors, 66,832 directed
//! co-author edges (33,416 undirected ties doubled), node attributes
//! `Area` (4 values, **homophily** — "authors in the same areas tend to
//! collaborate") and `Productivity` (4 values, **non-homophily** —
//! students co-author with professors), and one edge attribute
//! `Collaboration Strength` with values occasional / moderate / often
//! (paper: f = 1, 2 ≤ f < 5, f ≥ 5).
//!
//! Distributional facts the paper leans on are preserved:
//! * ~91.18% of authors have `Productivity:Poor` (explains D1/D3/D5);
//! * `DM` has the smallest area share (so D2's DB→DM preference is a true
//!   preference, "not due to data skewness");
//! * planted cross-area preferences reproduce D2 (`DB -often-> DM`),
//!   D16 (`AI∧Good -> DM`) and D4 (`Excellent -> DB`).

use crate::config::{EdgeAttrSpec, GeneratorConfig, NodeAttrSpec, PlantedRule, ValueCorrelation};

/// Value indices of `Area`.
pub mod area {
    /// Databases.
    pub const DB: u16 = 1;
    /// Data Mining.
    pub const DM: u16 = 2;
    /// Artificial Intelligence.
    pub const AI: u16 = 3;
    /// Information Retrieval.
    pub const IR: u16 = 4;
}

/// Value indices of `Productivity`.
pub mod productivity {
    /// Poor (the 91.18% mass).
    pub const POOR: u16 = 1;
    /// Fair.
    pub const FAIR: u16 = 2;
    /// Good.
    pub const GOOD: u16 = 3;
    /// Excellent.
    pub const EXCELLENT: u16 = 4;
}

/// Value indices of `CollabStrength`.
pub mod strength {
    /// Occasional collaboration (one co-authored paper).
    pub const OCCASIONAL: u16 = 1;
    /// Moderate (2–4 papers).
    pub const MODERATE: u16 = 2;
    /// Often (5+ papers).
    pub const OFTEN: u16 = 3;
}

/// The default DBLP-like configuration at the paper's scale
/// (28,702 authors, 33,416 undirected ties → 66,832 directed edges).
pub fn dblp_config() -> GeneratorConfig {
    GeneratorConfig {
        nodes: 28_702,
        edges: 33_416,
        node_attrs: vec![
            NodeAttrSpec::named(
                "Area",
                true,
                vec!["DB".into(), "DM".into(), "AI".into(), "IR".into()],
                // DM smallest (paper §VI-C: "DM has the least proportion
                // among all areas").
                vec![0.35, 0.11, 0.33, 0.21],
            ),
            NodeAttrSpec::named(
                "Productivity",
                false,
                vec![
                    "Poor".into(),
                    "Fair".into(),
                    "Good".into(),
                    "Excellent".into(),
                ],
                // Paper §VI-C: "91.18% of the authors have the value Poor".
                vec![0.9118, 0.05, 0.03, 0.0082],
            )
            // Productive authors attract far more co-authorship than their
            // population share ("most co-authorship is between supervisors
            // and students"), pulling the *edge* share of Poor down to the
            // ~70% the paper's D1/D3/D5 confidences imply.
            .with_dst_weights(vec![1.0, 3.0, 5.0, 10.0]),
        ],
        edge_attrs: vec![EdgeAttrSpec::named(
            "S",
            vec!["occasional".into(), "moderate".into(), "often".into()],
            vec![0.72, 0.25, 0.03],
        )],
        rules: vec![
            // D2: DB authors who collaborate often outside their area go
            // to DM. Small strength keeps D2's support small and its conf
            // low while nhp stays comfortably above the 50% mining
            // threshold at every fixture scale. At full scale this yields
            // supp ≈ 137, conf ≈ 15%, nhp ≈ 69% — the same shape as the
            // paper's supp 98 / conf 6.98% / nhp 71.5%, scaled to the
            // synthetic generator's denser often-edge population.
            PlantedRule::new(
                "D2",
                vec![("Area".into(), area::DB)],
                "Area",
                area::DM,
                0.012,
            )
            .with_edge_attr("S", strength::OFTEN),
            // D16: productive AI authors drift toward DM.
            PlantedRule::new(
                "D16",
                vec![
                    ("Area".into(), area::AI),
                    ("Productivity".into(), productivity::GOOD),
                ],
                "Area",
                area::DM,
                0.40,
            ),
            // D4: excellent authors gravitate to DB collaborations.
            PlantedRule::new(
                "D4",
                vec![("Productivity".into(), productivity::EXCELLENT)],
                "Area",
                area::DB,
                0.45,
            ),
        ],
        correlations: vec![
            // Excellent authors cluster in the DB area; area homophily
            // then routes their collaborations to DB partners — the
            // mechanism behind D4 `(P:Excellent) -> (A:DB)` that a
            // source-side rule cannot produce under undirected reversal.
            ValueCorrelation::new(
                "Productivity",
                productivity::EXCELLENT,
                "Area",
                vec![0.72, 0.10, 0.10, 0.08],
            ),
        ],
        homophily_prob: 0.85,
        undirected: true,
        seed: 19_990_621, // first DBLP XML release era; any constant works
    }
}

/// DBLP-like config scaled by `factor`.
pub fn dblp_config_scaled(factor: f64) -> GeneratorConfig {
    dblp_config().scaled(factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use grm_graph::{EdgeAttrId, NodeAttrId};

    const AREA: NodeAttrId = NodeAttrId(0);
    const PROD: NodeAttrId = NodeAttrId(1);
    const S: EdgeAttrId = EdgeAttrId(0);

    fn small() -> grm_graph::SocialGraph {
        generate(&dblp_config_scaled(0.2)).unwrap()
    }

    #[test]
    fn shape_matches_paper() {
        let cfg = dblp_config();
        assert_eq!(cfg.nodes, 28_702);
        assert_eq!(cfg.edges, 33_416, "33,416 ties -> 66,832 directed edges");
        assert!(cfg.undirected);
    }

    #[test]
    fn poor_dominates_productivity() {
        let g = small();
        let poor = g
            .node_ids()
            .filter(|&v| g.node_attr(v, PROD) == productivity::POOR)
            .count() as f64;
        let frac = poor / g.node_count() as f64;
        assert!((frac - 0.9118).abs() < 0.03, "Poor fraction {frac}");
    }

    #[test]
    fn area_homophily_strong() {
        let g = small();
        let same = g
            .edge_ids()
            .filter(|&e| g.src_attr(e, AREA) == g.dst_attr(e, AREA))
            .count() as f64;
        let frac = same / g.edge_count() as f64;
        assert!(frac > 0.75, "same-area fraction {frac} (paper conf ≈ 0.89)");
    }

    #[test]
    fn d2_often_collaborations_cross_into_dm() {
        let g = small();
        let mut dm = 0u32;
        let mut non_db = 0u32;
        for e in g.edge_ids() {
            if g.src_attr(e, AREA) != area::DB || g.edge_attr(e, S) != strength::OFTEN {
                continue;
            }
            let dst = g.dst_attr(e, AREA);
            if dst != area::DB {
                non_db += 1;
                if dst == area::DM {
                    dm += 1;
                }
            }
        }
        assert!(non_db > 0, "some often-edges leave DB");
        let nhp_ish = dm as f64 / non_db as f64;
        assert!(nhp_ish > 0.5, "D2 empirical nhp {nhp_ish}");
    }

    #[test]
    fn d2_confidence_is_low() {
        let g = small();
        let mut dm = 0u32;
        let mut all = 0u32;
        for e in g.edge_ids() {
            if g.src_attr(e, AREA) == area::DB && g.edge_attr(e, S) == strength::OFTEN {
                all += 1;
                if g.dst_attr(e, AREA) == area::DM {
                    dm += 1;
                }
            }
        }
        let conf = dm as f64 / all.max(1) as f64;
        assert!(
            conf < 0.4,
            "D2 must be invisible to the conf ranking (paper: 6.98%), got {conf}"
        );
    }

    #[test]
    fn undirected_edges_share_strength() {
        let g = small();
        let mut by_pair = std::collections::HashMap::new();
        for e in g.edge_ids() {
            let (s, t) = (g.src(e), g.dst(e));
            let key = (s.min(t), s.max(t));
            let v = g.edge_attr(e, S);
            if let Some(prev) = by_pair.insert(key, v) {
                assert_eq!(prev, v, "both directions carry the same strength");
            }
        }
    }
}
