//! Pokec-like synthetic dataset (§VI-A substitution — see DESIGN.md §5).
//!
//! The real Pokec dump (SNAP `soc-pokec`: 1,436,515 profiles, 21,078,140
//! directed friendship edges after the paper's preprocessing) is not
//! redistributable here, so this module generates a synthetic stand-in
//! with the paper's exact attribute schema —
//!
//! | attr | abbrev | domain | homophily |
//! |---|---|---|---|
//! | Gender | G | 3 | no |
//! | Age (discretized) | A | 11 | yes |
//! | Region | R | 188 | yes |
//! | Education | E | 10 | yes |
//! | What-Looking-For | L | 11 | yes |
//! | Marital-Status | S | 7 | no |
//!
//! — plus planted beyond-homophily preferences mirroring the findings the
//! paper reports in Table IIa (P1–P5) and §VI-B (P207 and its gender
//! variations). The default scale is 50k nodes / 600k edges (the paper's
//! average degree ≈ 14.7; ours ≈ 12); pass a factor to
//! [`pokec_config_scaled`] or use `GeneratorConfig::scaled`.

use crate::config::{EdgeAttrSpec, GeneratorConfig, NodeAttrSpec, PlantedRule};

/// Value index of `Gender`: F=1, M=2, Other=3.
pub mod gender {
    /// Female.
    pub const F: u16 = 1;
    /// Male.
    pub const M: u16 = 2;
}

/// Value indices of discretized `Age` (paper's brackets, §VI-A).
pub mod age {
    /// "18-24".
    pub const A18_24: u16 = 4;
    /// "25-34".
    pub const A25_34: u16 = 5;
}

/// Value indices of `Education`.
pub mod edu {
    /// "Preschool".
    pub const PRESCHOOL: u16 = 1;
    /// "Hardly Any".
    pub const HARDLY_ANY: u16 = 2;
    /// "Basic".
    pub const BASIC: u16 = 3;
    /// "Training".
    pub const TRAINING: u16 = 4;
    /// "Secondary".
    pub const SECONDARY: u16 = 5;
}

/// Value indices of `What-Looking-For`.
pub mod looking_for {
    /// "Chat".
    pub const CHAT: u16 = 1;
    /// "Good Friend".
    pub const GOOD_FRIEND: u16 = 2;
    /// "Sexual Partner".
    pub const SEXUAL_PARTNER: u16 = 4;
}

/// The default Pokec-like configuration (50k nodes, 600k directed edges,
/// seed 20160516 — the ICDE'16 opening date).
pub fn pokec_config() -> GeneratorConfig {
    GeneratorConfig {
        nodes: 50_000,
        edges: 600_000,
        node_attrs: vec![
            NodeAttrSpec::named(
                "Gender",
                false,
                vec!["F".into(), "M".into(), "Other".into()],
                vec![0.49, 0.49, 0.02],
            ),
            NodeAttrSpec::named(
                "Age",
                true,
                vec![
                    "0-6".into(),
                    "7-13".into(),
                    "14-17".into(),
                    "18-24".into(),
                    "25-34".into(),
                    "35-44".into(),
                    "45-54".into(),
                    "55-64".into(),
                    "65-79".into(),
                    "80+".into(),
                    "Unknown".into(),
                ],
                vec![
                    0.01, 0.04, 0.12, 0.30, 0.25, 0.12, 0.07, 0.04, 0.02, 0.01, 0.02,
                ],
            )
            .with_homophily_weight(0.5)
            .with_null_prob(0.02),
            NodeAttrSpec::numeric("Region", true, 188, zipf_weights(188, 1.0))
                .with_homophily_weight(16.0),
            NodeAttrSpec::named(
                "Education",
                true,
                vec![
                    "Preschool".into(),
                    "HardlyAny".into(),
                    "Basic".into(),
                    "Training".into(),
                    "Secondary".into(),
                    "Apprentice".into(),
                    "Bachelor".into(),
                    "Master".into(),
                    "PhD".into(),
                    "Other".into(),
                ],
                // The paper reports Secondary ≈ 19.54% and Training ≈ 1.9%
                // (the skew behind P2's high nhp).
                vec![0.05, 0.04, 0.28, 0.02, 0.20, 0.12, 0.10, 0.05, 0.02, 0.12],
            )
            .with_homophily_weight(1.0)
            .with_null_prob(0.05),
            NodeAttrSpec::named(
                "Looking",
                true,
                vec![
                    "Chat".into(),
                    "GoodFriend".into(),
                    "Love".into(),
                    "SexualPartner".into(),
                    "Marriage".into(),
                    "Penpal".into(),
                    "Sport".into(),
                    "Party".into(),
                    "Music".into(),
                    "Travel".into(),
                    "Other".into(),
                ],
                vec![
                    0.25, 0.20, 0.15, 0.12, 0.05, 0.04, 0.05, 0.06, 0.04, 0.02, 0.02,
                ],
            )
            .with_homophily_weight(1.0)
            .with_null_prob(0.05),
            NodeAttrSpec::named(
                "Marital",
                false,
                vec![
                    "Single".into(),
                    "Married".into(),
                    "Divorced".into(),
                    "Widowed".into(),
                    "InRelationship".into(),
                    "Complicated".into(),
                    "Other".into(),
                ],
                vec![0.45, 0.20, 0.08, 0.02, 0.18, 0.05, 0.02],
            )
            .with_null_prob(0.10),
        ],
        edge_attrs: Vec::<EdgeAttrSpec>::new(),
        rules: vec![
            // Table IIa P1: chatters befriend; excluding Chat-Chat
            // homophily, GoodFriend dominates.
            PlantedRule::new(
                "P1",
                vec![("Looking".into(), looking_for::CHAT)],
                "Looking",
                looking_for::GOOD_FRIEND,
                0.30,
            ),
            // P2: Basic education prefers Secondary once same-EDU ties are
            // excluded (Training, the "closer" level, is rare).
            PlantedRule::new(
                "P2",
                vec![("Education".into(), edu::BASIC)],
                "Education",
                edu::SECONDARY,
                0.30,
            ),
            // P3 / P4: the low-education ladder climbs to Basic.
            PlantedRule::new(
                "P3",
                vec![("Education".into(), edu::PRESCHOOL)],
                "Education",
                edu::BASIC,
                0.30,
            ),
            PlantedRule::new(
                "P4",
                vec![("Education".into(), edu::HARDLY_ANY)],
                "Education",
                edu::BASIC,
                0.30,
            ),
            // P5 and its §VI-B gender split: males looking for sexual
            // partners target females far more than the converse.
            PlantedRule::new(
                "P5m",
                vec![
                    ("Gender".into(), gender::M),
                    ("Looking".into(), looking_for::SEXUAL_PARTNER),
                ],
                "Gender",
                gender::F,
                0.55,
            ),
            PlantedRule::new(
                "P5f",
                vec![
                    ("Gender".into(), gender::F),
                    ("Looking".into(), looking_for::SEXUAL_PARTNER),
                ],
                "Gender",
                gender::M,
                0.05,
            ),
            // P207 and its gender variation: men 25-34 prefer 18-24
            // partners much more than women do.
            PlantedRule::new(
                "P207m",
                vec![("Gender".into(), gender::M), ("Age".into(), age::A25_34)],
                "Age",
                age::A18_24,
                0.28,
            ),
            PlantedRule::new(
                "P207f",
                vec![("Gender".into(), gender::F), ("Age".into(), age::A25_34)],
                "Age",
                age::A18_24,
                0.08,
            ),
        ],
        correlations: vec![],
        homophily_prob: 0.90,
        undirected: false,
        seed: 20_160_516,
    }
}

/// Pokec-like config scaled by `factor` in both nodes and edges.
pub fn pokec_config_scaled(factor: f64) -> GeneratorConfig {
    pokec_config().scaled(factor)
}

fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use grm_graph::NodeAttrId;

    const GENDER: NodeAttrId = NodeAttrId(0);
    const AGE: NodeAttrId = NodeAttrId(1);
    const REGION: NodeAttrId = NodeAttrId(2);
    const EDUCATION: NodeAttrId = NodeAttrId(3);
    const LOOKING: NodeAttrId = NodeAttrId(4);

    fn small() -> grm_graph::SocialGraph {
        generate(&pokec_config_scaled(0.04)).unwrap()
    }

    #[test]
    fn schema_matches_paper_table() {
        let g = small();
        let s = g.schema();
        assert_eq!(s.node_attr_count(), 6);
        assert_eq!(s.edge_attr_count(), 0);
        assert_eq!(s.node_attr(REGION).domain_size(), 188);
        assert_eq!(s.node_attr(AGE).domain_size(), 11);
        // Homophily setting: A, R, E, L homophilous; G, S not (§VI-A).
        let flags: Vec<bool> = s
            .node_attr_ids()
            .map(|a| s.node_attr(a).is_homophily())
            .collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn region_homophily_dominates() {
        let g = small();
        let same = g
            .edge_ids()
            .filter(|&e| {
                let v = g.src_attr(e, REGION);
                v != 0 && v == g.dst_attr(e, REGION)
            })
            .count() as f64;
        let frac = same / g.edge_count() as f64;
        assert!(
            frac > 0.5,
            "same-region fraction {frac}: conf ranking should be dominated by (R:x)->(R:x)"
        );
    }

    #[test]
    fn p2_preference_visible_beyond_homophily() {
        let g = small();
        let mut to_secondary = 0u32;
        let mut non_basic = 0u32;
        for e in g.edge_ids() {
            if g.src_attr(e, EDUCATION) != edu::BASIC {
                continue;
            }
            let dst = g.dst_attr(e, EDUCATION);
            if dst != edu::BASIC && dst != 0 {
                non_basic += 1;
                if dst == edu::SECONDARY {
                    to_secondary += 1;
                }
            }
        }
        let nhp_ish = to_secondary as f64 / non_basic as f64;
        assert!(nhp_ish > 0.5, "P2 empirical nhp {nhp_ish}");
    }

    #[test]
    fn p5_gender_asymmetry() {
        let g = small();
        let pref = |src_gender: u16, dst_gender: u16| {
            let mut hit = 0u32;
            let mut tot = 0u32;
            for e in g.edge_ids() {
                if g.src_attr(e, GENDER) == src_gender
                    && g.src_attr(e, LOOKING) == looking_for::SEXUAL_PARTNER
                {
                    tot += 1;
                    if g.dst_attr(e, GENDER) == dst_gender {
                        hit += 1;
                    }
                }
            }
            hit as f64 / tot.max(1) as f64
        };
        let male_to_female = pref(gender::M, gender::F);
        let female_to_male = pref(gender::F, gender::M);
        assert!(
            male_to_female > female_to_male + 0.1,
            "paper's §VI-B finding: {male_to_female} vs {female_to_male}"
        );
    }

    #[test]
    fn p207_age_asymmetry() {
        let g = small();
        let pref = |src_gender: u16| {
            let mut hit = 0u32;
            let mut non_same = 0u32;
            for e in g.edge_ids() {
                if g.src_attr(e, GENDER) == src_gender && g.src_attr(e, AGE) == age::A25_34 {
                    let dst = g.dst_attr(e, AGE);
                    if dst != age::A25_34 && dst != 0 {
                        non_same += 1;
                        if dst == age::A18_24 {
                            hit += 1;
                        }
                    }
                }
            }
            hit as f64 / non_same.max(1) as f64
        };
        assert!(
            pref(gender::M) > pref(gender::F) + 0.1,
            "men 25-34 prefer 18-24 much more: {} vs {}",
            pref(gender::M),
            pref(gender::F)
        );
    }

    #[test]
    fn default_scale_shape() {
        let cfg = pokec_config();
        assert_eq!(cfg.nodes, 50_000);
        assert_eq!(cfg.edges, 600_000);
        assert!(!cfg.undirected);
    }
}
