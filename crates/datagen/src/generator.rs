//! The synthetic attributed-network generator.
//!
//! ## Edge model
//!
//! Nodes draw each attribute independently from its configured marginal
//! (with the configured null probability). Edges are then generated one at
//! a time:
//!
//! 1. a source node is drawn uniformly;
//! 2. the **planted rules** are consulted in order; the first rule whose
//!    source conditions match fires with its `strength`, drawing the
//!    destination from nodes with `target_attr = target_value` (and
//!    forcing the rule's edge attribute, if any);
//! 3. otherwise, with probability `homophily_prob` the edge is
//!    **homophily-driven**: a homophilous attribute is chosen by its
//!    `homophily_weight` (among those the source has non-null) and the
//!    destination is drawn from nodes sharing the source's value;
//! 4. otherwise the destination is uniform random — background noise.
//!
//! Self-loops are rejected and duplicate ties are retried a few times, so
//! the output is (almost always) a simple directed graph. This mixture is
//! exactly the structure the paper's metrics dissect: step 3 produces the
//! high-confidence homophily ties that dominate a conf ranking, step 2 the
//! "secondary bonds" that only the nhp ranking surfaces, and step 4 the
//! noise floor.

use crate::config::{GeneratorConfig, PlantedRule, ValueCorrelation};
use crate::distributions::Categorical;
use crate::index::ValueIndex;
use grm_graph::{AttrValue, GraphBuilder, Result, Schema, SchemaBuilder, SocialGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A streaming consumer of generated graph data.
///
/// `generate_into` drives a sink with every node row (in node-id order)
/// and then every directed edge (in generation order; an undirected
/// config emits both directions back to back, exactly like
/// [`GraphBuilder::add_undirected`]). This lets a graph larger than an
/// in-core [`SocialGraph`] stream straight into an out-of-core store —
/// the sharded spill writer implements it — while [`generate`] remains a
/// thin builder-backed wrapper producing byte-identical graphs.
pub trait GraphSink {
    /// Consume the next node's attribute row; nodes arrive in id order.
    fn node(&mut self, values: &[AttrValue]) -> Result<()>;
    /// Consume one directed edge between already-emitted nodes.
    fn edge(&mut self, src: u32, dst: u32, values: &[AttrValue]) -> Result<()>;
}

impl GraphSink for GraphBuilder {
    fn node(&mut self, values: &[AttrValue]) -> Result<()> {
        self.add_node(values).map(|_| ())
    }
    fn edge(&mut self, src: u32, dst: u32, values: &[AttrValue]) -> Result<()> {
        self.add_edge(src, dst, values).map(|_| ())
    }
}

impl GraphSink for grm_graph::shard::ShardStoreWriter {
    fn node(&mut self, values: &[AttrValue]) -> Result<()> {
        self.add_node(values).map(|_| ())
    }
    fn edge(&mut self, src: u32, dst: u32, values: &[AttrValue]) -> Result<()> {
        self.add_edge(src, dst, values)
    }
}

/// Generate a graph from `config`. Deterministic in `(config, seed)`.
pub fn generate(config: &GeneratorConfig) -> Result<SocialGraph> {
    let schema = build_schema(config)?;
    let mut builder = GraphBuilder::with_capacity(
        schema,
        config.nodes,
        if config.undirected {
            config.edges * 2
        } else {
            config.edges
        },
    );
    generate_into(config, &mut builder)?;
    builder.build()
}

/// Stream the generated graph into `sink` instead of materializing it.
/// Deterministic in `(config, seed)`; the node/edge sequence is
/// byte-identical to what [`generate`] builds.
pub fn generate_into(config: &GeneratorConfig, sink: &mut dyn GraphSink) -> Result<()> {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // --- Nodes ------------------------------------------------------------
    let node_dists: Vec<Categorical> = config
        .node_attrs
        .iter()
        .map(|a| {
            if a.weights.is_empty() {
                Categorical::uniform(a.domain as usize)
            } else {
                Categorical::new(&a.weights)
            }
        })
        .collect();
    let correlations: Vec<ResolvedCorrelation> = config
        .correlations
        .iter()
        .map(|c| ResolvedCorrelation::resolve(c, config))
        .collect::<Result<_>>()?;
    let mut rows: Vec<Vec<AttrValue>> = Vec::with_capacity(config.nodes);
    for _ in 0..config.nodes {
        let mut row: Vec<AttrValue> = config
            .node_attrs
            .iter()
            .zip(&node_dists)
            .map(|(spec, dist)| {
                if spec.null_prob > 0.0 && rng.gen::<f64>() < spec.null_prob {
                    0
                } else {
                    dist.sample(&mut rng)
                }
            })
            .collect();
        for c in &correlations {
            if row[c.if_attr] == c.if_value && row[c.then_attr] != 0 {
                row[c.then_attr] = c.dist.sample(&mut rng);
            }
        }
        rows.push(row);
    }

    let domains: Vec<u16> = config.node_attrs.iter().map(|a| a.domain).collect();
    // Per-node attractiveness: product of the per-value dst multipliers.
    let node_weights: Vec<f64> = rows
        .iter()
        .map(|row| {
            config
                .node_attrs
                .iter()
                .zip(row)
                .map(|(spec, &v)| match (&spec.dst_weights, v) {
                    (Some(w), v) if v != 0 => w[v as usize - 1],
                    _ => 1.0,
                })
                .product()
        })
        .collect();
    let index = ValueIndex::build_weighted(&domains, &rows, &node_weights);

    // Resolve rule attribute names once.
    let resolved_rules: Vec<ResolvedRule> = config
        .rules
        .iter()
        .map(|r| ResolvedRule::resolve(r, config))
        .collect::<Result<_>>()?;

    // Homophily driver distribution (per-source renormalized over non-null
    // attrs; we pre-build the unconditional chooser and re-draw on nulls).
    let homo_attrs: Vec<usize> = config
        .node_attrs
        .iter()
        .enumerate()
        .filter(|(_, a)| a.homophily && a.homophily_weight > 0.0)
        .map(|(i, _)| i)
        .collect();
    let homo_chooser = if homo_attrs.is_empty() {
        None
    } else {
        Some(Categorical::new(
            &homo_attrs
                .iter()
                .map(|&i| config.node_attrs[i].homophily_weight)
                .collect::<Vec<_>>(),
        ))
    };

    let edge_dists: Vec<Categorical> = config
        .edge_attrs
        .iter()
        .map(|a| {
            if a.weights.is_empty() {
                Categorical::uniform(a.values.len())
            } else {
                Categorical::new(&a.weights)
            }
        })
        .collect();

    // --- Edges ------------------------------------------------------------
    for row in &rows {
        sink.node(row)?;
    }

    let n = config.nodes as u32;
    if n < 2 {
        return Ok(());
    }
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(config.edges * 2);
    let mut edge_vals: Vec<AttrValue> = vec![0; config.edge_attrs.len()];

    'edges: for _ in 0..config.edges {
        // A handful of attempts to find a fresh, loop-free tie; a fully
        // saturated bucket structure could otherwise livelock.
        for _attempt in 0..32 {
            let src = rng.gen_range(0..n);
            let src_row = &rows[src as usize];

            // Sample edge attributes; a firing rule may overwrite one.
            for (i, d) in edge_dists.iter().enumerate() {
                edge_vals[i] = d.sample(&mut rng);
            }

            let mut dst: Option<u32> = None;
            // Step 2: planted rules.
            for rule in &resolved_rules {
                if rule.matches(src_row) && rng.gen::<f64>() < rule.strength {
                    dst = index.sample(&mut rng, rule.target_attr, rule.target_value, src);
                    if dst.is_some() {
                        if let Some((ea, ev)) = rule.edge_attr {
                            edge_vals[ea] = ev;
                        }
                    }
                    break;
                }
            }
            // Step 3: homophily.
            if dst.is_none() {
                if let Some(chooser) = &homo_chooser {
                    if rng.gen::<f64>() < config.homophily_prob {
                        // Re-draw a few times if the source is null there.
                        for _ in 0..4 {
                            let pick = homo_attrs[chooser.sample(&mut rng) as usize - 1];
                            let v = src_row[pick];
                            if v != 0 {
                                dst = index.sample(&mut rng, pick, v, src);
                                break;
                            }
                        }
                    }
                }
            }
            // Step 4: noise (attractiveness-weighted).
            let dst = match dst {
                Some(d) => d,
                None => match index.sample_any(&mut rng, src) {
                    Some(d) => d,
                    None => continue,
                },
            };
            if dst == src {
                continue;
            }
            let key = if config.undirected && src > dst {
                (dst, src)
            } else {
                (src, dst)
            };
            if !seen.insert(key) {
                continue;
            }
            sink.edge(src, dst, &edge_vals)?;
            if config.undirected {
                sink.edge(dst, src, &edge_vals)?;
            }
            continue 'edges;
        }
        // Dense corner case: give up on this tie rather than loop forever.
    }

    Ok(())
}

/// Build the [`Schema`] implied by a generator config (also used by tests
/// and the harness to construct queries against generated graphs).
pub fn build_schema(config: &GeneratorConfig) -> Result<Schema> {
    let mut sb = SchemaBuilder::new();
    for a in &config.node_attrs {
        sb = match &a.values {
            Some(names) => sb.node_attr_named(a.name.clone(), a.homophily, names.clone()),
            None => sb.node_attr(a.name.clone(), a.domain, a.homophily),
        };
    }
    for a in &config.edge_attrs {
        sb = sb.edge_attr_named(a.name.clone(), a.values.clone());
    }
    sb.build()
}

struct ResolvedCorrelation {
    if_attr: usize,
    if_value: AttrValue,
    then_attr: usize,
    dist: Categorical,
}

impl ResolvedCorrelation {
    fn resolve(c: &ValueCorrelation, config: &GeneratorConfig) -> Result<Self> {
        let pos = |name: &str| -> Result<usize> {
            config
                .node_attrs
                .iter()
                .position(|a| a.name == name)
                .ok_or_else(|| grm_graph::GraphError::UnknownName { name: name.into() })
        };
        Ok(ResolvedCorrelation {
            if_attr: pos(&c.if_attr)?,
            if_value: c.if_value,
            then_attr: pos(&c.then_attr)?,
            dist: Categorical::new(&c.weights),
        })
    }
}

struct ResolvedRule {
    conditions: Vec<(usize, AttrValue)>,
    target_attr: usize,
    target_value: AttrValue,
    strength: f64,
    edge_attr: Option<(usize, AttrValue)>,
}

impl ResolvedRule {
    fn resolve(rule: &PlantedRule, config: &GeneratorConfig) -> Result<Self> {
        let node_pos = |name: &str| -> Result<usize> {
            config
                .node_attrs
                .iter()
                .position(|a| a.name == name)
                .ok_or_else(|| grm_graph::GraphError::UnknownName { name: name.into() })
        };
        let edge_pos = |name: &str| -> Result<usize> {
            config
                .edge_attrs
                .iter()
                .position(|a| a.name == name)
                .ok_or_else(|| grm_graph::GraphError::UnknownName { name: name.into() })
        };
        Ok(ResolvedRule {
            conditions: rule
                .src_conditions
                .iter()
                .map(|(name, v)| Ok((node_pos(name)?, *v)))
                .collect::<Result<_>>()?,
            target_attr: node_pos(&rule.target_attr)?,
            target_value: rule.target_value,
            strength: rule.strength,
            edge_attr: match &rule.edge_attr {
                Some((name, v)) => Some((edge_pos(name)?, *v)),
                None => None,
            },
        })
    }

    fn matches(&self, row: &[AttrValue]) -> bool {
        self.conditions.iter().all(|&(a, v)| row[a] == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EdgeAttrSpec, NodeAttrSpec};

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            nodes: 200,
            edges: 1000,
            node_attrs: vec![
                NodeAttrSpec::named("G", false, vec!["F".into(), "M".into()], vec![0.5, 0.5]),
                NodeAttrSpec::named(
                    "E",
                    true,
                    vec!["Basic".into(), "Secondary".into(), "College".into()],
                    vec![0.5, 0.3, 0.2],
                ),
            ],
            edge_attrs: vec![EdgeAttrSpec::named("T", vec!["dates".into()], vec![1.0])],
            rules: vec![PlantedRule::new("R1", vec![("E".into(), 1)], "E", 2, 0.3)],
            correlations: vec![],
            homophily_prob: 0.5,
            undirected: false,
            seed: 11,
        }
    }

    #[test]
    fn generates_requested_sizes() {
        let g = generate(&small_config()).unwrap();
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.edge_count(), 1000);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_config()).unwrap();
        let b = generate(&small_config()).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        for e in a.edge_ids() {
            assert_eq!(a.src(e), b.src(e));
            assert_eq!(a.dst(e), b.dst(e));
        }
        let c = generate(&small_config().with_seed(99)).unwrap();
        let differs = a
            .edge_ids()
            .any(|e| a.src(e) != c.src(e) || a.dst(e) != c.dst(e));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn no_self_loops_or_duplicate_ties() {
        let g = generate(&small_config()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for e in g.edge_ids() {
            assert_ne!(g.src(e), g.dst(e));
            assert!(seen.insert((g.src(e), g.dst(e))), "duplicate edge");
        }
    }

    #[test]
    fn homophily_shows_up_in_edge_mix() {
        let g = generate(&small_config()).unwrap();
        let e_attr = grm_graph::NodeAttrId(1);
        let same = g
            .edge_ids()
            .filter(|&e| g.src_attr(e, e_attr) == g.dst_attr(e, e_attr))
            .count() as f64;
        let frac = same / g.edge_count() as f64;
        // Base rate of same-E under independence ≈ 0.25+0.09+0.04 = 0.38;
        // with homophily_prob 0.5 the fraction must be clearly above it.
        assert!(frac > 0.45, "same-value fraction {frac}");
    }

    #[test]
    fn planted_rule_beats_background() {
        let g = generate(&small_config()).unwrap();
        let e_attr = grm_graph::NodeAttrId(1);
        // Among edges from E:Basic sources not going to E:Basic (the nhp
        // conditioning), Secondary must dominate College well beyond the
        // 0.3 : 0.2 marginal ratio.
        let mut to_secondary = 0.0;
        let mut to_college = 0.0;
        for e in g.edge_ids() {
            if g.src_attr(e, e_attr) != 1 {
                continue;
            }
            match g.dst_attr(e, e_attr) {
                2 => to_secondary += 1.0,
                3 => to_college += 1.0,
                _ => {}
            }
        }
        assert!(
            to_secondary > 2.0 * to_college,
            "secondary {to_secondary} vs college {to_college}"
        );
    }

    #[test]
    fn undirected_doubles_edges_symmetrically() {
        let mut cfg = small_config();
        cfg.undirected = true;
        cfg.edges = 300;
        let g = generate(&cfg).unwrap();
        assert_eq!(g.edge_count(), 600);
        let set: std::collections::HashSet<(u32, u32)> =
            g.edge_ids().map(|e| (g.src(e), g.dst(e))).collect();
        for &(s, t) in &set {
            assert!(set.contains(&(t, s)), "missing reverse of {s}->{t}");
        }
    }

    #[test]
    fn streaming_is_byte_identical_to_building() {
        // `generate` is now a sink wrapper; this pins the contract the
        // out-of-core path relies on: the streamed node/edge sequence IS
        // the built graph, for directed and undirected configs alike.
        struct Tape {
            nodes: Vec<Vec<AttrValue>>,
            edges: Vec<(u32, u32, Vec<AttrValue>)>,
        }
        impl GraphSink for Tape {
            fn node(&mut self, values: &[AttrValue]) -> Result<()> {
                self.nodes.push(values.to_vec());
                Ok(())
            }
            fn edge(&mut self, src: u32, dst: u32, values: &[AttrValue]) -> Result<()> {
                self.edges.push((src, dst, values.to_vec()));
                Ok(())
            }
        }
        for undirected in [false, true] {
            let mut cfg = small_config();
            cfg.undirected = undirected;
            cfg.edges = 400;
            let g = generate(&cfg).unwrap();
            let mut tape = Tape {
                nodes: Vec::new(),
                edges: Vec::new(),
            };
            generate_into(&cfg, &mut tape).unwrap();
            assert_eq!(tape.nodes.len(), g.node_count());
            for (i, row) in tape.nodes.iter().enumerate() {
                assert_eq!(row.as_slice(), g.node_row(i as u32));
            }
            assert_eq!(tape.edges.len(), g.edge_count());
            for (i, (s, t, vals)) in tape.edges.iter().enumerate() {
                let e = i as u32;
                assert_eq!((*s, *t), (g.src(e), g.dst(e)));
                assert_eq!(vals.as_slice(), g.edge_row(e));
            }
        }
    }

    #[test]
    fn streaming_into_a_shard_store_preserves_the_graph() {
        let cfg = small_config();
        let g = generate(&cfg).unwrap();
        let dir = std::env::temp_dir().join(format!("grm-datagen-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = grm_graph::shard::ShardStoreWriter::create(
            build_schema(&cfg).unwrap(),
            &dir,
            3,
            usize::MAX,
        )
        .unwrap();
        generate_into(&cfg, &mut w).unwrap();
        let store = w.finish().unwrap();
        assert_eq!(store.total_edges(), g.edge_count() as u64);
        assert_eq!(store.node_count(), g.node_count());
        // Every routed edge carries its exact endpoint + attribute row.
        let mut seen = 0usize;
        for s in 0..store.shard_count() {
            store
                .for_each_edge(s, |src, dst, row| {
                    seen += 1;
                    assert!(g
                        .edge_ids()
                        .any(|e| g.src(e) == src && g.dst(e) == dst && g.edge_row(e) == row));
                    Ok(())
                })
                .unwrap();
        }
        assert_eq!(seen, g.edge_count());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_rule_attr_is_an_error() {
        let mut cfg = small_config();
        cfg.rules = vec![PlantedRule::new("bad", vec![], "NOPE", 1, 0.5)];
        assert!(generate(&cfg).is_err());
    }

    #[test]
    fn null_prob_leaves_fields_unfilled() {
        let mut cfg = small_config();
        cfg.node_attrs[1] = cfg.node_attrs[1].clone().with_null_prob(0.4);
        cfg.rules.clear();
        let g = generate(&cfg).unwrap();
        let nulls = g
            .node_ids()
            .filter(|&v| g.node_attr(v, grm_graph::NodeAttrId(1)) == 0)
            .count() as f64;
        let frac = nulls / g.node_count() as f64;
        assert!((frac - 0.4).abs() < 0.12, "null fraction {frac}");
    }
}
