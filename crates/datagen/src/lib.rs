//! # grm-datagen — workloads for mining social ties beyond homophily
//!
//! Synthetic attributed social networks with *planted* homophily and
//! beyond-homophily structure, standing in for the two real datasets of
//! the paper's evaluation (§VI-A) that cannot be redistributed here:
//!
//! * [`pokec_config`] — Pokec-like friendship network (the paper's exact
//!   6-attribute schema; planted P1–P5 / P207 analogues; default 50k
//!   nodes / 600k edges, scalable);
//! * [`dblp_config`] — DBLP-like co-authorship network at the paper's
//!   exact scale (28,702 authors / 66,832 directed edges; planted
//!   D2 / D4 / D16 analogues; 91.18% `Poor` productivity skew);
//! * [`toy_network`] — the Fig. 1 toy dating network with hand-verified
//!   GR1–GR4 counts.
//!
//! The general-purpose [`generate`] function accepts any
//! [`GeneratorConfig`]: attribute marginals, per-attribute homophily
//! strengths, and [`PlantedRule`]s (ground-truth "secondary bonds" that a
//! correct nhp miner must surface and a confidence ranking must miss).

#![warn(missing_docs)]

pub mod config;
pub mod dblp;
pub mod distributions;
mod generator;
mod index;
pub mod pokec;
mod toy;

pub use config::{EdgeAttrSpec, GeneratorConfig, NodeAttrSpec, PlantedRule};
pub use dblp::{dblp_config, dblp_config_scaled};
pub use generator::{build_schema, generate, generate_into, GraphSink};
pub use pokec::{pokec_config, pokec_config_scaled};
pub use toy::{toy_network, toy_schema};
