//! Sampling primitives for the synthetic network generator.

use rand::Rng;

/// A categorical distribution over `1..=n` (attribute values; never null),
/// sampled in O(log n) via a cumulative table.
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights; `weights[i]` is the weight of value
    /// `i + 1`. Panics if all weights are zero or any is negative.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one value");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "negative categorical weight"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "categorical weights sum to zero");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against float drift at the top end.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Categorical { cumulative }
    }

    /// Uniform over `1..=n`.
    pub fn uniform(n: usize) -> Self {
        Self::new(&vec![1.0; n])
    }

    /// Zipf-like over `1..=n` with exponent `s` (value 1 most probable) —
    /// the shape of the Pokec `Region` marginal.
    pub fn zipf(n: usize, s: f64) -> Self {
        let weights: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
        Self::new(&weights)
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is degenerate (no values) — never true for
    /// a constructed instance.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Sample a value in `1..=len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        let u: f64 = rng.gen();
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1);
        (idx + 1) as u16
    }

    /// Probability of value `v` (1-based).
    pub fn prob(&self, v: u16) -> f64 {
        let i = v as usize - 1;
        let lo = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_weights() {
        let c = Categorical::new(&[8.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 3];
        for _ in 0..20_000 {
            counts[c.sample(&mut rng) as usize - 1] += 1;
        }
        let p0 = counts[0] as f64 / 20_000.0;
        assert!((p0 - 0.8).abs() < 0.02, "got {p0}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn values_always_in_domain() {
        let c = Categorical::zipf(188, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let v = c.sample(&mut rng);
            assert!((1..=188).contains(&v));
        }
    }

    #[test]
    fn zipf_is_head_heavy() {
        let c = Categorical::zipf(100, 1.0);
        assert!(c.prob(1) > c.prob(2));
        assert!(c.prob(2) > c.prob(50));
        let total: f64 = (1..=100).map(|v| c.prob(v)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_is_flat() {
        let c = Categorical::uniform(4);
        for v in 1..=4 {
            assert!((c.prob(v) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn prob_sums_to_one() {
        let c = Categorical::new(&[0.0, 3.0, 1.0]);
        assert_eq!(c.prob(1), 0.0);
        assert!((c.prob(2) - 0.75).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert_ne!(c.sample(&mut rng), 1, "zero-weight value never drawn");
        }
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn deterministic_under_seed() {
        let c = Categorical::zipf(20, 0.8);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u16> = (0..100).map(|_| c.sample(&mut a)).collect();
        let vb: Vec<u16> = (0..100).map(|_| c.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
